"""Supervised task execution: deadlines, retries, pool respawn,
graceful degradation.

The :class:`Supervisor` runs the engine's per-center tasks the way the
plain executor does — same tasks, same ordering, bitwise-identical
results on a fault-free run — but survives the ways long computations
actually die:

* **Per-center deadlines.**  Waiting on a task is bounded by
  ``RuntimePolicy.deadline``; a hung worker is killed with its pool and
  the task retried on a fresh pool.
* **Retry with exponential backoff.**  Worker crashes, garbage results
  (every result passes a shape/NaN validator) and deadline expiries are
  retried up to ``retries`` times, sleeping ``backoff * factor**attempt``
  between waves.
* **``BrokenProcessPool`` recovery.**  An OOM-killed worker breaks the
  whole pool and poisons every in-flight future; the supervisor records
  a *strike* against each unfinished task, respawns the pool, and
  resubmits.  After ``strikes`` pool breaks a task is degraded to
  **serial in-process execution** — a deterministic fault there fails
  only its own task instead of taking the pool down again.
* **Graceful degradation.**  A task whose retries are exhausted is
  returned as ``None`` with a ``timeout``/``failed``
  :class:`~repro.runtime.status.CenterStatus`; the engine averages the
  surviving centers and surfaces the status block instead of aborting.

The supervisor is generic over the compute callable so that
:mod:`repro.engine` can depend on it without an import cycle.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.runtime import faults as faults_mod
from repro.runtime.faults import FaultPlan, InjectedHang, apply_fault
from repro.runtime.status import (
    STATE_FAILED,
    STATE_OK,
    STATE_RETRIED,
    STATE_TIMEOUT,
    CenterStatus,
)

Task = Tuple[int, int]  # (plan index, center index)


@dataclasses.dataclass
class RuntimePolicy:
    """Knobs of the fault-tolerant runtime.

    ``deadline`` is the per-center wall-clock budget while the run is
    waiting on that center (``None`` disables timeouts); ``retries`` is
    the number of *re*-attempts after the first; ``strikes`` is how many
    pool breaks a task survives before being degraded to serial
    execution; ``faults`` optionally injects deterministic faults (else
    the ``REPRO_FAULTS`` environment variable is consulted).
    """

    deadline: Optional[float] = 120.0
    retries: int = 2
    backoff: float = 0.1
    backoff_factor: float = 2.0
    strikes: int = 2
    faults: Optional[FaultPlan] = None

    def backoff_for(self, attempt: int) -> float:
        if self.backoff <= 0:
            return 0.0
        return self.backoff * (self.backoff_factor ** max(0, attempt - 1))


class GarbageResultError(RuntimeError):
    """A task returned a result that failed shape/NaN validation."""


def validate_center_result(result: Any) -> bool:
    """Shape-check one center result before it can poison an average.

    Expected: ``(counts_at, group_contributions)`` where ``counts_at``
    is ``None`` or a list of non-negative ints and each group
    contribution is ``(radius:int, size:int, {rid:int -> finite float})``.
    """
    try:
        counts_at, groups = result
    except (TypeError, ValueError):
        return False
    if counts_at is not None:
        if not isinstance(counts_at, (list, tuple)):
            return False
        for count in counts_at:
            if not isinstance(count, int) or isinstance(count, bool) or count < 0:
                return False
    if not isinstance(groups, (list, tuple)):
        return False
    for contributions in groups:
        if not isinstance(contributions, (list, tuple)):
            return False
        for entry in contributions:
            try:
                radius, size, values = entry
            except (TypeError, ValueError):
                return False
            if not isinstance(radius, int) or not isinstance(size, int):
                return False
            if not isinstance(values, dict):
                return False
            for value in values.values():
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    return False
                if value != value or value in (float("inf"), float("-inf")):
                    return False
    return True


# ----------------------------------------------------------------------
# Worker-side plumbing.  The pool initializer pins the compute callable,
# graph, plans and fault plan once per worker; tasks then ship only
# small index tuples.
# ----------------------------------------------------------------------

_W_COMPUTE: Optional[Callable] = None
_W_GRAPH: Any = None
_W_PLANS: Any = None
_W_FAULTS: Optional[FaultPlan] = None


def _sup_pool_init(compute, graph, plans, fault_text: str) -> None:
    global _W_COMPUTE, _W_GRAPH, _W_PLANS, _W_FAULTS
    _W_COMPUTE = compute
    _W_GRAPH = graph
    _W_PLANS = plans
    _W_FAULTS = FaultPlan.parse(fault_text) if fault_text else None


def _sup_pool_task(task: Tuple[int, int, int, Tuple[str, ...]]):
    pi, ci, attempt, metric_names = task
    if _W_FAULTS is not None:
        spec = _W_FAULTS.find(metric_names, ci, attempt)
        if spec is not None:
            injected = apply_fault(spec, in_worker=True)
            if spec.kind == "garbage":
                return injected
    return _W_COMPUTE(_W_GRAPH, _W_PLANS[pi], ci)


class Supervisor:
    """Run per-center tasks under a :class:`RuntimePolicy`.

    ``compute`` is the serial per-task callable ``(graph, plan, ci) ->
    result`` (the engine passes its ``_compute_center``); it must be a
    module-level function so worker processes can unpickle it.
    """

    def __init__(
        self,
        policy: RuntimePolicy,
        workers: int,
        compute: Callable,
    ):
        self.policy = policy
        self.workers = int(workers)
        self.compute = compute
        self.faults = (
            policy.faults if policy.faults is not None else faults_mod.plan_from_env()
        )
        self.stats = {"pool_respawns": 0, "degraded_tasks": 0, "retried_tasks": 0}

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(
        self,
        graph: Any,
        plans: Sequence[Any],
        tasks: Sequence[Task],
        metric_names: Sequence[Tuple[str, ...]],
        preloaded: Optional[Dict[int, Any]] = None,
        on_done: Optional[Callable[[int, Any], None]] = None,
    ) -> Tuple[List[Any], List[CenterStatus]]:
        """Execute ``tasks``; returns (results, statuses) aligned with
        ``tasks``.  Failed tasks yield ``None`` results.

        ``metric_names[pi]`` names the metrics plan ``pi`` computes (for
        fault matching); ``preloaded`` maps task indices to journaled
        results that must not be recomputed; ``on_done`` is called once
        per freshly computed success (the engine journals there).
        """
        results: List[Any] = [None] * len(tasks)
        statuses = [CenterStatus() for _ in tasks]
        todo: List[int] = []
        for index in range(len(tasks)):
            if preloaded and index in preloaded:
                results[index] = preloaded[index]
            else:
                todo.append(index)
        if not todo:
            return results, statuses
        if self.workers > 0 and len(todo) > 1:
            self._run_parallel(
                graph, plans, tasks, metric_names, todo, results, statuses, on_done
            )
        else:
            for index in todo:
                self._run_one_serial(
                    graph, plans, tasks, metric_names, index, results, statuses, on_done
                )
        self.stats["retried_tasks"] += sum(
            1 for s in statuses if s.state == STATE_RETRIED
        )
        return results, statuses

    # ------------------------------------------------------------------
    # Serial execution (also the degraded path for striked tasks)
    # ------------------------------------------------------------------
    def _run_one_serial(
        self, graph, plans, tasks, metric_names, index, results, statuses, on_done
    ) -> None:
        policy = self.policy
        pi, ci = tasks[index]
        status = statuses[index]
        last_error: Optional[str] = None
        last_state = STATE_FAILED
        for attempt in range(policy.retries + 1):
            status.attempts = attempt + 1
            try:
                spec = (
                    self.faults.find(metric_names[pi], ci, attempt)
                    if self.faults is not None
                    else None
                )
                if spec is not None:
                    result = apply_fault(spec, in_worker=False)
                    if spec.kind != "garbage":  # hang/crash raise above
                        result = self.compute(graph, plans[pi], ci)
                else:
                    result = self.compute(graph, plans[pi], ci)
                if not validate_center_result(result):
                    raise GarbageResultError(
                        f"center {ci} of plan {pi} returned a malformed result"
                    )
            except InjectedHang as exc:
                last_error, last_state = str(exc), STATE_TIMEOUT
            except Exception as exc:  # noqa: BLE001 - supervision boundary
                last_error, last_state = str(exc), STATE_FAILED
            else:
                status.state = STATE_RETRIED if attempt > 0 else STATE_OK
                results[index] = result
                if on_done is not None:
                    on_done(index, result)
                return
            if attempt < policy.retries:
                delay = policy.backoff_for(attempt + 1)
                if delay:
                    time.sleep(delay)
        status.state = last_state
        status.error = last_error

    # ------------------------------------------------------------------
    # Parallel execution
    # ------------------------------------------------------------------
    def _spawn_pool(self, graph, plans, fault_text, n_tasks):
        try:
            return ProcessPoolExecutor(
                max_workers=min(self.workers, n_tasks),
                initializer=_sup_pool_init,
                initargs=(self.compute, graph, plans, fault_text),
            )
        except (OSError, PermissionError):  # pragma: no cover - sandboxes
            return None

    def _kill_pool(self, pool) -> None:
        """Tear a pool down *now*, hung workers included."""
        processes = []
        try:
            processes = list(getattr(pool, "_processes", {}).values())
        except Exception:  # pragma: no cover - executor internals moved
            pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover
            pass
        for process in processes:
            try:
                process.terminate()
            except Exception:  # pragma: no cover
                pass
        for process in processes:
            try:
                process.join(timeout=1.0)
            except Exception:  # pragma: no cover
                pass
        self.stats["pool_respawns"] += 1

    def _run_parallel(
        self, graph, plans, tasks, metric_names, todo, results, statuses, on_done
    ) -> None:
        policy = self.policy
        fault_text = self.faults.to_text() if self.faults is not None else ""
        attempts: Dict[int, int] = {i: 0 for i in todo}
        strikes: Dict[int, int] = {i: 0 for i in todo}
        pool = None
        try:
            while todo:
                # Tasks that broke (or were suspected of breaking) the
                # pool too often run serially in-process: a fault there
                # is attributable and cannot take the pool down.
                degraded = [i for i in todo if strikes[i] >= policy.strikes]
                if degraded:
                    self.stats["degraded_tasks"] += len(degraded)
                    for index in degraded:
                        self._run_one_serial(
                            graph, plans, tasks, metric_names,
                            index, results, statuses, on_done,
                        )
                    remaining = set(degraded)
                    todo = [i for i in todo if i not in remaining]
                    continue
                if pool is None:
                    pool = self._spawn_pool(graph, plans, fault_text, len(todo))
                    if pool is None:
                        # Subprocesses unavailable: everything serial.
                        for index in todo:
                            self._run_one_serial(
                                graph, plans, tasks, metric_names,
                                index, results, statuses, on_done,
                            )
                        return
                futures = {}
                for index in todo:
                    pi, ci = tasks[index]
                    futures[index] = pool.submit(
                        _sup_pool_task,
                        (pi, ci, attempts[index], tuple(metric_names[pi])),
                    )
                next_todo: List[int] = []
                dead_pool = False
                for index in todo:
                    future = futures[index]
                    status = statuses[index]
                    if dead_pool and not future.done():
                        # In-flight work lost with the pool through no
                        # fault of its own: requeue penalty-free.
                        next_todo.append(index)
                        continue
                    try:
                        result = future.result(
                            timeout=None if future.done() else policy.deadline
                        )
                    except FutureTimeout:
                        attempts[index] += 1
                        status.attempts = attempts[index]
                        if attempts[index] > policy.retries:
                            status.state = STATE_TIMEOUT
                            status.error = (
                                f"no result within {policy.deadline:g}s "
                                f"deadline after {attempts[index]} attempts"
                            )
                        else:
                            next_todo.append(index)
                        dead_pool = True  # a worker is stuck; kill the pool
                        continue
                    except BrokenProcessPool as exc:
                        # Culprit unknown: strike every task poisoned by
                        # this break.  Innocents finish on the respawned
                        # pool long before their strikes run out.
                        strikes[index] += 1
                        status.error = str(exc) or "process pool broke"
                        next_todo.append(index)
                        dead_pool = True
                        continue
                    except Exception as exc:  # noqa: BLE001 - task raised
                        attempts[index] += 1
                        status.attempts = attempts[index]
                        if attempts[index] > policy.retries:
                            status.state = STATE_FAILED
                            status.error = str(exc)
                        else:
                            next_todo.append(index)
                        continue
                    if not validate_center_result(result):
                        attempts[index] += 1
                        status.attempts = attempts[index]
                        if attempts[index] > policy.retries:
                            status.state = STATE_FAILED
                            status.error = "returned a malformed (garbage) result"
                        else:
                            next_todo.append(index)
                        continue
                    status.attempts = attempts[index] + 1
                    status.state = (
                        STATE_RETRIED
                        if (attempts[index] or strikes[index])
                        else STATE_OK
                    )
                    results[index] = result
                    if on_done is not None:
                        on_done(index, result)
                if dead_pool:
                    self._kill_pool(pool)
                    pool = None
                    if next_todo:
                        delay = policy.backoff_for(
                            max(attempts[i] for i in next_todo) or 1
                        )
                        if delay:
                            time.sleep(delay)
                todo = next_todo
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
