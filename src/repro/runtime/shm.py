"""Zero-copy shared-memory transport for frozen CSR graphs.

Worker processes historically received the graph as pickled CSR arrays
through the pool initializer: cheap relative to the dict-of-sets days,
but still one full copy of ``indptr``/``indices`` per worker per pool
spin-up — and the supervised runtime respawns pools on every break.
This module publishes the two arrays once into a
:mod:`multiprocessing.shared_memory` segment; workers attach read-only
**by name** and wrap zero-copy numpy views, so a respawned pool costs a
handle pickle (segment name + node labels) instead of an array copy.

Layout
------
One segment per published graph, named ``repro-csr-<pid>-<seq>``:
``indptr`` bytes (int32, n+1 entries) followed immediately by
``indices`` bytes (int32, 2m entries).  The :class:`SegmentHandle`
shipped to workers carries the name, the two lengths and the node
labels (a ``range`` for streamed graphs — O(1) to pickle).

Lifecycle
---------
* :func:`publish` creates (or re-acquires) the segment for a given
  :class:`~repro.graph.csr.CSRGraph` and returns a refcounted
  :class:`SharedGraph`.  Publications are registered per ``id(csr)``
  so the engine and the service's ``GraphStore`` share one segment.
* :meth:`SharedGraph.release` drops one reference; the last release
  unlinks the segment.  Pool *respawns* never release — the engine
  holds its reference across the whole compute (including exception
  paths), so a ``BrokenProcessPool`` cannot leak or lose the segment.
* Workers call :func:`attach` (via the pickled handle); attaching
  never takes a reference — the parent's refcount is the only owner.
  Attached segments are closed when the worker exits.
* SIGKILL backstop: the creating process's ``resource_tracker`` (a
  separate process) outlives a SIGKILLed parent and unlinks every
  still-registered segment, so chaos kills cannot leak ``/dev/shm``.
  Workers share the publisher's tracker (the fd is inherited under
  fork and spawn alike), so ≤3.12's attach-side auto-registration
  collapses into the publisher's entry — a worker exiting early never
  destroys the live segment, and the publisher's ``unlink`` clears
  the tracker exactly once.

:func:`publish` returns ``None`` when shared memory is unavailable
(platform without ``/dev/shm``, permission errors, zero-byte graphs);
callers fall back to copy transport (plain pickling) with identical
results.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graph.csr import CSRGraph

try:  # pragma: no cover - stdlib, but gate the exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None  # type: ignore[assignment]

#: Every segment this module creates is named with this prefix, so leak
#: checks (tests, CI) can scan ``/dev/shm`` for strays.
SEGMENT_PREFIX = "repro-csr-"

_ITEMSIZE = np.dtype(np.int32).itemsize

_lock = threading.Lock()
_seq = 0
#: id(csr) -> live publication, so concurrent publishers of the same
#: frozen graph (engine pass + GraphStore pin) share one segment.
_registry: Dict[int, "SharedGraph"] = {}
#: Attached segments are pinned for the worker's lifetime: closing a
#: segment with live numpy views raises ``BufferError``.
_attached: List[object] = []


def _next_name() -> str:
    global _seq
    _seq += 1
    return f"{SEGMENT_PREFIX}{os.getpid()}-{_seq}"


@dataclasses.dataclass(frozen=True)
class SegmentHandle:
    """Everything a worker needs to attach: name, lengths, labels."""

    name: str
    indptr_len: int
    indices_len: int
    nodes: Union[range, list]
    graph_name: str


class SharedGraph:
    """A refcounted shared-memory publication of one CSR graph.

    Create through :func:`publish`; never instantiate directly.  The
    reference count starts at 1 (the publisher's); :meth:`acquire`
    and :meth:`release` are thread-safe, and the final release unlinks
    the segment and drops it from the registry.
    """

    __slots__ = ("csr", "handle", "_shm", "_refs", "_key")

    def __init__(self, csr: CSRGraph, shm, handle: SegmentHandle, key: int):
        self.csr = csr
        self.handle = handle
        self._shm = shm
        self._refs = 1
        self._key = key

    @property
    def alive(self) -> bool:
        return self._shm is not None

    @property
    def refs(self) -> int:
        return self._refs

    def acquire(self) -> "SharedGraph":
        with _lock:
            if self._shm is None:
                raise RuntimeError(f"segment {self.handle.name} already unlinked")
            self._refs += 1
        return self

    def release(self) -> None:
        """Drop one reference; the last one unlinks the segment."""
        with _lock:
            if self._shm is None:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            shm, self._shm = self._shm, None
            if _registry.get(self._key) is self:
                del _registry[self._key]
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a view outlived us
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already reaped
            pass


def publish(csr: CSRGraph) -> Optional[SharedGraph]:
    """Publish ``csr``'s arrays to shared memory (or re-acquire).

    Returns a :class:`SharedGraph` holding one reference, or ``None``
    when shared memory cannot be used here (caller falls back to copy
    transport).  Publishing the same ``csr`` object again while a
    publication is live re-acquires it instead of creating a second
    segment.
    """
    if _shared_memory is None:  # pragma: no cover - exotic platforms
        return None
    key = id(csr)
    with _lock:
        existing = _registry.get(key)
        if existing is not None and existing._shm is not None:
            existing._refs += 1
            return existing
    nbytes = csr.indptr.nbytes + csr.indices.nbytes
    if nbytes == 0:
        return None  # nothing worth a segment; pickle is fine
    try:
        shm = _shared_memory.SharedMemory(
            name=_next_name(), create=True, size=nbytes
        )
    except (OSError, ValueError):  # pragma: no cover - no /dev/shm, EPERM
        return None
    split = csr.indptr.nbytes
    np.frombuffer(shm.buf, dtype=np.int32, count=len(csr.indptr))[:] = csr.indptr
    np.frombuffer(
        shm.buf, dtype=np.int32, count=len(csr.indices), offset=split
    )[:] = csr.indices
    handle = SegmentHandle(
        name=shm.name,
        indptr_len=len(csr.indptr),
        indices_len=len(csr.indices),
        nodes=csr.node_list(),
        graph_name=csr.name,
    )
    published = SharedGraph(csr, shm, handle, key)
    with _lock:
        _registry[key] = published
    return published


def attach(handle: SegmentHandle) -> CSRGraph:
    """Attach to a published segment and wrap zero-copy CSR views.

    Runs in worker processes (driven by ``_ComputeContext``'s pickle
    reduction).  The returned graph's arrays alias the shared segment
    directly — no copy — and are read-only like every ``CSRGraph``.
    """
    if _shared_memory is None:  # pragma: no cover
        raise RuntimeError("shared memory unavailable; cannot attach")
    try:
        shm = _shared_memory.SharedMemory(name=handle.name, create=False, track=False)
    except TypeError:  # pragma: no cover - track= is 3.13+
        # ≤3.12 registers attachments with the resource tracker too.
        # Every attacher here shares the *publisher's* tracker (pool
        # workers inherit its fd under fork and spawn alike), and the
        # tracker's cache is a set — so this duplicate registration
        # collapses into the publisher's entry and the publisher's
        # ``unlink()`` removes it exactly once.  Do NOT unregister from
        # the worker: that would strip the SIGKILL backstop and make
        # the publisher's own unregister a tracker-visible KeyError.
        shm = _shared_memory.SharedMemory(name=handle.name, create=False)
    _attached.append(shm)
    indptr = np.frombuffer(shm.buf, dtype=np.int32, count=handle.indptr_len)
    indices = np.frombuffer(
        shm.buf,
        dtype=np.int32,
        count=handle.indices_len,
        offset=handle.indptr_len * _ITEMSIZE,
    )
    return CSRGraph(indptr, indices, handle.nodes, name=handle.graph_name)


def active_segments() -> List[str]:
    """Names of this process's live publications (for leak assertions)."""
    with _lock:
        return sorted(
            pub.handle.name for pub in _registry.values() if pub.alive
        )


def stray_segments() -> List[str]:
    """``/dev/shm`` entries matching our prefix, live or leaked.

    Empty on platforms without a ``/dev/shm`` filesystem; chaos tests
    assert this returns ``[]`` once every engine/service pass is done.
    """
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-Linux
        return []
    try:
        entries = os.listdir(root)
    except OSError:  # pragma: no cover
        return []
    return sorted(e for e in entries if e.startswith(SEGMENT_PREFIX))
