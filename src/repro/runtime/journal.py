"""Append-only checkpoint journal for long computations.

A :class:`Journal` is a JSONL file of ``{"k": key, "p": payload, "c":
checksum}`` records.  The engine appends one record per completed
(graph, metric-plan, center) task and the harness appends one per
finished sweep row / report topology, each record flushed and fsynced —
so after a crash, an OOM-kill, or Ctrl-C, a ``--resume`` run reloads the
journal and recomputes **zero** already-journaled work.

Robustness properties:

* **Torn tails are harmless.**  A process killed mid-write leaves at
  most one truncated final line; loading skips any line that fails to
  parse or whose checksum does not match, counts it in
  :attr:`corrupt_lines`, and keeps everything before it.
* **Duplicate keys are allowed** (last record wins), so a run that is
  resumed twice — or that re-journals a row after a partial line — needs
  no compaction step.
* **Checksums are content hashes** of ``[key, payload]``, so a corrupted
  byte anywhere in a record quarantines that record only.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

PathLike = Union[str, "os.PathLike[str]"]


def _record_checksum(key: str, payload: Any) -> str:
    canonical = json.dumps([key, payload], sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def _parse_line(line: str) -> Optional[Tuple[str, Any]]:
    """Decode one journal line; ``None`` if torn, corrupt, or blank."""
    line = line.strip()
    if not line:
        return None
    try:
        record = json.loads(line)
        key = record["k"]
        payload = record["p"]
        if record["c"] != _record_checksum(key, payload):
            return None
    except (ValueError, KeyError, TypeError):
        return None
    return key, payload


def read_journal_records(path: PathLike) -> Tuple[List[Tuple[str, Any]], int]:
    """Stream a journal file preserving record order.

    Returns ``(records, corrupt_lines)`` where ``records`` is every
    valid ``(key, payload)`` pair in file order — duplicates included —
    and ``corrupt_lines`` counts the non-blank lines that failed to
    parse or checksum.  The shard merge needs file order (a
    last-record-wins map would lose the ordering that makes the merged
    journal byte-identical to an unsharded run), which is why this is
    separate from :meth:`Journal.load`.

    A missing file yields ``([], 0)``; any other ``OSError`` (e.g. a
    permission error) propagates.
    """
    records: List[Tuple[str, Any]] = []
    corrupt = 0
    try:
        handle = open(path, "r", encoding="utf-8")
    except FileNotFoundError:
        return records, corrupt
    with handle:
        for line in handle:
            if not line.strip():
                continue
            parsed = _parse_line(line)
            if parsed is None:
                corrupt += 1
                continue
            records.append(parsed)
    return records, corrupt


class Journal:
    """An append-only, checksummed, crash-tolerant key→payload log."""

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self._entries: Dict[str, Any] = {}
        self._loaded = False
        #: Lines skipped on load because they were truncated or corrupt.
        self.corrupt_lines = 0

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self) -> Dict[str, Any]:
        """Parse the journal file (idempotent); returns the entry map.

        Streams line-by-line rather than buffering the whole file (a
        merged multi-shard journal can be large).  A missing file is an
        empty journal; any other ``OSError`` — a permission error, an
        I/O error — propagates rather than masquerading as "no
        checkpoints".
        """
        if self._loaded:
            return self._entries
        self._loaded = True
        try:
            handle = open(self.path, "r", encoding="utf-8")
        except FileNotFoundError:
            return self._entries
        with handle:
            for line in handle:
                if not line.strip():
                    continue
                parsed = _parse_line(line)
                if parsed is None:
                    self.corrupt_lines += 1
                    continue
                key, payload = parsed
                self._entries[key] = payload
        return self._entries

    def __contains__(self, key: str) -> bool:
        return key in self.load()

    def __len__(self) -> int:
        return len(self.load())

    def get(self, key: str, default: Any = None) -> Any:
        return self.load().get(key, default)

    def keys(self) -> Iterator[str]:
        return iter(self.load())

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, key: str, payload: Any) -> None:
        """Durably append one record (flush + fsync before returning)."""
        self.load()
        record = {"k": key, "p": payload, "c": _record_checksum(key, payload)}
        line = json.dumps(record, separators=(",", ":"))
        if self.path.parent and not self.path.parent.is_dir():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            try:
                os.fsync(handle.fileno())
            except OSError:  # pragma: no cover - exotic filesystems
                pass
        self._entries[key] = payload

    def reset(self) -> None:
        """Discard the journal: delete the file and forget all entries."""
        try:
            self.path.unlink()
        except OSError:
            pass
        self._entries = {}
        self._loaded = True
        self.corrupt_lines = 0


def as_journal(journal: Optional[Union[Journal, PathLike]]) -> Optional[Journal]:
    """Coerce a path (or ``None``/instance) into a :class:`Journal`."""
    if journal is None or isinstance(journal, Journal):
        return journal
    return Journal(journal)
