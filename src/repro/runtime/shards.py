"""Partitioned sweep execution: shard journals, leases, crash-safe merge.

Long parameter sweeps (Appendix C / Figure 11) are embarrassingly
parallel at the row level: every (row, center) task has a stable
journal identity, so the task space can be split across N independent
worker processes — or hosts sharing a filesystem — and stitched back
together afterwards.  This module provides the three pieces:

* **Partitioner** — :func:`assign_shard` deals row *i* of the manifest
  to shard ``i % num_shards``: deterministic, disjoint, covering.  The
  manifest (``<base>.manifest.json``) pins the full row ordering so
  every shard — and the merge — agrees on the task space without
  coordination.
* **Leases** — :class:`ShardLease` guards each shard's journal segment
  with a lease file (created ``O_EXCL``, holder pid + host inside,
  liveness = file mtime refreshed by :meth:`ShardLease.heartbeat`).  A
  second worker claiming a held shard gets :class:`LeaseHeldError`; a
  lease whose heartbeat is older than ``stale_after`` — or whose
  same-host holder pid is dead — is taken over, so a SIGKILLed shard's
  work is resumable by anyone.
* **Merge** — :func:`merge_segments` combines the per-shard journal
  segments (``<base>.shard-<k>.jsonl``, the ordinary checksummed JSONL
  format) into one canonical journal **byte-identical** to the journal
  an unsharded run of the same sweep would have written.  Duplicate
  keys resolve last-record-wins, corrupt records are quarantined
  per-record (never per-segment), rows no shard finished are reported
  as explicit holes, and segments that are missing entirely are listed
  in :attr:`MergeReport.missing_shards` rather than silently dropped.

Why the merge can promise byte-identity: an unsharded sweep journal is,
for each row in manifest order, that row's center records (appended in
task order by the supervised engine) followed by the row's own record.
Each segment contains exactly those per-row chunks for its assigned
rows, in assigned order — a killed-and-resumed shard only appends the
*missing* records, so its chunks still read out in task order.  The
merge walks each segment once, closes a chunk at every manifest row
key, then emits completed chunks in manifest row order, preserving the
original line bytes.  See ``docs/ROBUSTNESS.md`` ("Partitioned
sweeps").
"""

from __future__ import annotations

import dataclasses
import json
import os
import socket as _socket
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime.journal import PathLike, _parse_line

#: Default seconds of heartbeat silence after which a lease is stale.
DEFAULT_STALE_AFTER = 300.0

MANIFEST_VERSION = 1


class LeaseHeldError(RuntimeError):
    """The shard is already claimed by a live worker."""


class ManifestError(RuntimeError):
    """The sweep manifest is missing or disagrees with this sweep."""


# ----------------------------------------------------------------------
# Paths and the partitioner
# ----------------------------------------------------------------------

def _stem(base: PathLike) -> Path:
    """The journal path minus a trailing ``.jsonl`` suffix."""
    path = Path(base)
    if path.suffix == ".jsonl":
        return path.with_suffix("")
    return path


def shard_segment_path(base: PathLike, shard_id: int) -> Path:
    """The journal segment shard ``shard_id`` appends to."""
    return _stem(base).with_name(f"{_stem(base).name}.shard-{shard_id}.jsonl")


def shard_lease_path(base: PathLike, shard_id: int) -> Path:
    """The lease file guarding shard ``shard_id``."""
    return _stem(base).with_name(f"{_stem(base).name}.shard-{shard_id}.lease")


def shard_report_path(base: PathLike, shard_id: int) -> Path:
    """Where shard ``shard_id`` drops its per-shard run report."""
    return _stem(base).with_name(
        f"{_stem(base).name}.shard-{shard_id}.report.json"
    )


def manifest_path(base: PathLike) -> Path:
    """The sweep manifest pinning row order and shard count."""
    return _stem(base).with_name(f"{_stem(base).name}.manifest.json")


def assign_shard(index: int, num_shards: int) -> int:
    """Deal manifest row ``index`` to a shard (round-robin).

    Deterministic, disjoint and covering by construction: every index
    maps to exactly one shard and every shard in ``range(num_shards)``
    is hit.  All shards and the merge call this with the same manifest,
    so the partition needs no coordination.
    """
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    if index < 0:
        raise ValueError(f"row index must be non-negative, got {index}")
    return index % num_shards


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp + fsync + replace)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        try:
            os.fsync(handle.fileno())
        except OSError:  # pragma: no cover - exotic filesystems
            pass
    os.replace(tmp, path)


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------

def write_manifest(
    base: PathLike,
    row_keys: List[str],
    num_shards: int,
    meta: Optional[Dict[str, Any]] = None,
    force: bool = False,
) -> Path:
    """Persist the sweep's task space next to the journal.

    Serialization is canonical (sorted keys, fixed separators), so every
    shard of the same sweep writes identical bytes and concurrent writes
    are idempotent — including ``force=True``, which fresh (non-resume)
    runs use to claim the path outright: every shard of the same sweep
    forces the same bytes, atomically.

    Without ``force`` (resume runs), a pre-existing manifest describing
    a *different task space* (other rows/meta — i.e. a different sweep
    aimed at the same journal) raises :class:`ManifestError` instead of
    being clobbered.  A differing shard count alone is tolerated: an
    unsharded resume (``num_shards == 1``) leaves the recorded count in
    place so a later merge still finds every segment, while a sharded
    run re-records its own count.
    """
    path = manifest_path(base)
    manifest = {
        "version": MANIFEST_VERSION,
        "num_shards": int(num_shards),
        "rows": list(row_keys),
        "meta": dict(meta or {}),
    }
    text = json.dumps(manifest, sort_keys=True, separators=(",", ":")) + "\n"
    if force:
        atomic_write_text(path, text)
        return path
    try:
        existing = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        atomic_write_text(path, text)
        return path
    if existing == text:
        return path
    try:
        recorded = json.loads(existing)
        same_space = (
            isinstance(recorded, dict)
            and recorded.get("version") == manifest["version"]
            and recorded.get("rows") == manifest["rows"]
            and recorded.get("meta") == manifest["meta"]
        )
    except ValueError:
        same_space = False
    if not same_space:
        raise ManifestError(
            f"{path}: existing manifest disagrees with this sweep "
            "(different rows or parameters); delete it or pick another "
            "--journal to start a new partitioned sweep"
        )
    if int(num_shards) > 1:
        atomic_write_text(path, text)
    return path


def read_manifest(base: PathLike) -> Dict[str, Any]:
    """Load and validate the manifest for ``base``."""
    path = manifest_path(base)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise ManifestError(
            f"{path}: no sweep manifest found; run the sharded sweep "
            "(which writes it) before merging"
        ) from None
    try:
        manifest = json.loads(text)
    except ValueError as exc:
        raise ManifestError(f"{path}: unreadable manifest: {exc}") from exc
    if (
        not isinstance(manifest, dict)
        or manifest.get("version") != MANIFEST_VERSION
        or not isinstance(manifest.get("rows"), list)
        or not isinstance(manifest.get("num_shards"), int)
    ):
        raise ManifestError(f"{path}: manifest has an unsupported shape")
    return manifest


# ----------------------------------------------------------------------
# Leases
# ----------------------------------------------------------------------

def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


@dataclasses.dataclass
class LeaseInfo:
    """Who holds (or held) a lease, as recorded in the lease file."""

    pid: int
    host: str
    acquired_at: float


class ShardLease:
    """Exclusive claim on one shard's journal segment.

    The lease is a file created with ``O_CREAT | O_EXCL`` — atomic on
    POSIX filesystems — holding the claimant's pid and hostname.  The
    file's **mtime is the heartbeat**: workers call :meth:`heartbeat`
    between rows, and a claimant finding an existing lease may take it
    over only when the heartbeat is older than ``stale_after`` seconds
    or the recorded pid is provably dead on this host.  Everything else
    raises :class:`LeaseHeldError` — two live workers never share a
    segment.

    Usable as a context manager::

        with ShardLease(shard_lease_path(journal, k)) as lease:
            ...  # compute rows, lease.heartbeat() between them
    """

    def __init__(
        self, path: PathLike, stale_after: float = DEFAULT_STALE_AFTER
    ):
        self.path = Path(path)
        self.stale_after = float(stale_after)
        self.held = False

    # -- inspection ----------------------------------------------------
    def holder(self) -> Optional[LeaseInfo]:
        """The recorded holder, or ``None`` when unclaimed/unreadable."""
        try:
            record = json.loads(self.path.read_text(encoding="utf-8"))
            return LeaseInfo(
                pid=int(record["pid"]),
                host=str(record["host"]),
                acquired_at=float(record["acquired_at"]),
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def is_stale(self) -> bool:
        """True when the current lease file may be taken over."""
        try:
            mtime = self.path.stat().st_mtime
        except FileNotFoundError:
            return False  # nothing to take over
        if time.time() - mtime > self.stale_after:
            return True
        info = self.holder()
        if info is None:
            # Torn lease write: claimant died inside acquire().
            return True
        if info.host == _socket.gethostname() and not _pid_alive(info.pid):
            return True
        return False

    # -- lifecycle -----------------------------------------------------
    def acquire(self) -> "ShardLease":
        """Claim the shard; raise :class:`LeaseHeldError` if live-held."""
        if self.held:
            return self
        self.path.parent.mkdir(parents=True, exist_ok=True)
        for attempt in (0, 1):
            try:
                fd = os.open(
                    self.path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
                )
            except FileExistsError:
                if attempt == 0 and self.is_stale():
                    # Dead holder: remove and retry the exclusive create
                    # (a racing claimant may still beat us to it, which
                    # the second O_EXCL attempt detects).
                    try:
                        self.path.unlink()
                    except FileNotFoundError:
                        pass
                    continue
                info = self.holder()
                who = (
                    f"pid {info.pid} on {info.host}" if info else "unknown"
                )
                raise LeaseHeldError(
                    f"{self.path}: shard lease held by {who} "
                    f"(heartbeat within {self.stale_after:.0f}s)"
                )
            record = {
                "pid": os.getpid(),
                "host": _socket.gethostname(),
                "acquired_at": time.time(),
            }
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True))
                handle.flush()
                try:
                    os.fsync(handle.fileno())
                except OSError:  # pragma: no cover
                    pass
            self.held = True
            return self
        raise LeaseHeldError(
            f"{self.path}: lost the takeover race for a stale lease"
        )  # pragma: no cover - needs a racing claimant in the window

    def heartbeat(self) -> None:
        """Refresh the lease mtime; call between units of work."""
        if not self.held:
            raise RuntimeError("heartbeat on a lease not held")
        try:
            os.utime(self.path)
        except FileNotFoundError:  # pragma: no cover - external meddling
            pass

    def release(self) -> None:
        """Drop the claim (idempotent)."""
        if not self.held:
            return
        self.held = False
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "ShardLease":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------

@dataclasses.dataclass
class SegmentInfo:
    """What the merge found in one shard's journal segment."""

    shard: int
    path: str
    exists: bool
    records: int = 0
    corrupt_lines: int = 0
    rows: int = 0


@dataclasses.dataclass
class MergeReport:
    """Outcome of :func:`merge_segments`."""

    out: str
    total_rows: int
    merged_rows: int
    #: Manifest rows no shard completed: ``{"index", "key", "shard"}``.
    holes: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    #: Shards whose segment file does not exist at all.
    missing_shards: List[int] = dataclasses.field(default_factory=list)
    corrupt_lines: int = 0
    #: Valid center records salvaged from unfinished rows (kept in the
    #: merged journal so a ``--resume`` run skips that work too).
    orphan_records: int = 0
    segments: List[SegmentInfo] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.holes and not self.missing_shards

    def summary(self) -> str:
        parts = [f"{self.merged_rows}/{self.total_rows} rows merged"]
        if self.missing_shards:
            parts.append(
                "missing shard segments: "
                + ", ".join(str(s) for s in self.missing_shards)
            )
        if self.holes:
            parts.append(f"{len(self.holes)} hole(s)")
        if self.corrupt_lines:
            parts.append(f"{self.corrupt_lines} corrupt record(s) dropped")
        if self.orphan_records:
            parts.append(f"{self.orphan_records} partial record(s) kept")
        return "; ".join(parts)


def _read_segment(path: Path) -> Tuple[List[Tuple[str, str]], int]:
    """All valid ``(key, original_line)`` pairs in file order.

    Carrying the original line (rather than re-serializing the parsed
    record) makes the merged journal's byte-identity unconditional —
    the merge never re-encodes anything.  Corruption is counted
    per-record: one flipped byte drops one line, never the segment.
    """
    records: List[Tuple[str, str]] = []
    corrupt = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            text = line.rstrip("\n")
            if not text.strip():
                continue
            parsed = _parse_line(text)
            if parsed is None:
                corrupt += 1
                continue
            records.append((parsed[0], text))
    return records, corrupt


def _dedupe(chunk: List[Tuple[str, str]]) -> List[Tuple[str, str]]:
    """Last-record-wins within a chunk, first-occurrence order kept."""
    latest: Dict[str, str] = {}
    order: List[str] = []
    for key, line in chunk:
        if key not in latest:
            order.append(key)
        latest[key] = line
    return [(key, latest[key]) for key in order]


def merge_segments(
    base: PathLike,
    out: Optional[PathLike] = None,
    num_shards: Optional[int] = None,
) -> MergeReport:
    """Merge shard journal segments into one canonical journal.

    ``base`` is the journal path the sweep was aimed at (the same value
    every shard got as ``--journal``); the manifest and segments are
    found next to it.  The merged journal is written atomically to
    ``out`` (default: ``base`` itself, so a plain ``repro sweep
    --resume --journal base`` afterwards fills any holes).

    Guarantees:

    * byte-identical to an unsharded run's journal whenever every
      manifest row was completed by its shard (segments' original line
      bytes are preserved, rows emitted in manifest order);
    * duplicate keys resolve last-record-wins;
    * corrupt records are dropped individually and counted in
      :attr:`MergeReport.corrupt_lines`;
    * unfinished rows surface as :attr:`MergeReport.holes` and missing
      segment files as :attr:`MergeReport.missing_shards` — never
      silently;
    * valid center records belonging to unfinished rows are appended
      after the completed rows (counted as ``orphan_records``) so a
      resume run re-uses them.
    """
    manifest = read_manifest(base)
    shards = int(num_shards if num_shards is not None else manifest["num_shards"])
    if shards <= 0:
        raise ValueError(f"num_shards must be positive, got {shards}")
    row_keys: List[str] = list(manifest["rows"])
    row_key_set = set(row_keys)

    report = MergeReport(
        out=str(out if out is not None else base),
        total_rows=len(row_keys),
        merged_rows=0,
    )
    chunks: Dict[str, List[Tuple[str, str]]] = {}
    orphans: List[Tuple[str, str]] = []

    for shard in range(shards):
        segment = shard_segment_path(base, shard)
        info = SegmentInfo(shard=shard, path=str(segment), exists=segment.is_file())
        report.segments.append(info)
        if not info.exists:
            report.missing_shards.append(shard)
            continue
        records, corrupt = _read_segment(segment)
        info.records = len(records)
        info.corrupt_lines = corrupt
        report.corrupt_lines += corrupt
        current: List[Tuple[str, str]] = []
        for key, line in records:
            current.append((key, line))
            if key in row_key_set:
                # A row record closes its chunk: everything since the
                # previous row belongs to this row (last chunk wins if
                # the row was somehow journaled twice).
                chunks[key] = current
                info.rows += 1
                current = []
        orphans.extend(current)

    lines: List[str] = []
    emitted: set = set()
    for index, key in enumerate(row_keys):
        chunk = chunks.get(key)
        if chunk is None:
            report.holes.append(
                {"index": index, "key": key, "shard": assign_shard(index, shards)}
            )
            continue
        for record_key, line in _dedupe(chunk):
            if record_key in emitted:
                continue
            emitted.add(record_key)
            lines.append(line)
        report.merged_rows += 1
    for record_key, line in _dedupe(orphans):
        if record_key in emitted:
            continue
        emitted.add(record_key)
        lines.append(line)
        report.orphan_records += 1

    out_path = Path(out if out is not None else base)
    atomic_write_text(
        out_path, "".join(line + "\n" for line in lines)
    )
    return report


__all__ = [
    "DEFAULT_STALE_AFTER",
    "atomic_write_text",
    "LeaseHeldError",
    "LeaseInfo",
    "ManifestError",
    "MergeReport",
    "SegmentInfo",
    "ShardLease",
    "assign_shard",
    "manifest_path",
    "merge_segments",
    "read_manifest",
    "shard_lease_path",
    "shard_report_path",
    "shard_segment_path",
    "write_manifest",
]
