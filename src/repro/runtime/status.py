"""Per-center execution status: the provenance of every series.

When retries are exhausted the engine returns *partial* series rather
than aborting — so every computed series carries a status block saying,
center by center, whether the value came from a clean computation
(``ok``), a recovered failure (``retried``), an expired deadline
(``timeout``), or exhausted retries (``failed``, that center excluded
from the averages).  Reports and exports surface these blocks so a
partial series can never be mistaken for a complete one.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

#: Per-center states, in increasing order of severity.
STATE_OK = "ok"
STATE_RETRIED = "retried"
STATE_TIMEOUT = "timeout"
STATE_FAILED = "failed"

#: States whose center still contributed a result.
SUCCESS_STATES = (STATE_OK, STATE_RETRIED)


@dataclasses.dataclass
class CenterStatus:
    """Outcome of one (plan, center) task."""

    state: str = STATE_OK
    attempts: int = 0
    error: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return self.state in SUCCESS_STATES


@dataclasses.dataclass
class SeriesStatus:
    """Outcome of one metric's series.

    ``source`` records where the series came from: ``computed`` (this
    run, with per-center ``states``), ``cache`` (the on-disk series
    cache) or ``legacy`` (the unsupervised execution path, which aborts
    rather than degrades, so every center is implicitly ``ok``).
    """

    metric: str
    source: str = "computed"  # computed | cache | legacy
    states: List[str] = dataclasses.field(default_factory=list)
    errors: List[Optional[str]] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(state in SUCCESS_STATES for state in self.states)

    @property
    def complete(self) -> bool:
        """True when no center had to be dropped from the averages."""
        return self.ok

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for state in self.states:
            out[state] = out.get(state, 0) + 1
        return out

    def summary(self) -> str:
        if self.source == "cache":
            return "cached"
        if not self.states:
            return "ok"
        counts = self.counts
        if set(counts) == {STATE_OK}:
            return f"ok ({counts[STATE_OK]} centers)"
        return ", ".join(
            f"{counts[state]} {state}"
            for state in (STATE_OK, STATE_RETRIED, STATE_TIMEOUT, STATE_FAILED)
            if state in counts
        )


@dataclasses.dataclass
class RunReport:
    """Status of every metric in one ``MetricEngine.compute`` call."""

    metrics: Dict[str, SeriesStatus] = dataclasses.field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(status.ok for status in self.metrics.values())

    @property
    def degraded_metrics(self) -> List[str]:
        """Metrics whose series are partial (some center dropped)."""
        return [name for name, status in self.metrics.items() if not status.ok]

    def summary(self) -> str:
        if not self.metrics:
            return "ok"
        return "; ".join(
            f"{name}: {status.summary()}"
            for name, status in self.metrics.items()
        )

    def to_payload(self) -> Dict[str, Dict]:
        """JSON-able form for exports (see ``write_series_json``)."""
        return {
            name: {
                "source": status.source,
                "states": list(status.states),
                "errors": [e for e in status.errors if e] or [],
                "complete": status.complete,
            }
            for name, status in self.metrics.items()
        }
