"""Graceful-drain signal plumbing for long-lived processes.

The ``repro serve`` daemon must treat ``SIGTERM`` (and ``SIGINT``) as a
*drain* request — stop admitting work, finish what is in flight, then
exit cleanly — rather than dying mid-computation.  The supervision and
journal layers already make abrupt death survivable; this helper makes
polite death *clean*, so an orchestrator's ordinary stop signal never
leaves half-answered connections behind.

:class:`DrainSignal` is deliberately tiny and reusable: it installs a
handler that flips a :class:`threading.Event` (and remembers which
signal fired), restoring the previous handlers on exit.  Installation
is a no-op off the main thread — Python only delivers signals to the
main thread, and background-thread servers (tests, the selfcheck
family) are stopped by their owner calling ``request_drain`` directly.
"""

from __future__ import annotations

import signal
import threading
from typing import List, Optional


class DrainSignal:
    """A drain request latch, optionally wired to process signals.

    Usage::

        drain = DrainSignal()
        with drain.installed(signal.SIGTERM):
            while not drain.requested:
                ...accept and serve work...
        # previous handlers are restored here
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self.signal_number: Optional[int] = None

    @property
    def requested(self) -> bool:
        return self._event.is_set()

    def request_drain(self, signum: Optional[int] = None) -> None:
        """Flip the latch (callable from any thread or signal handler)."""
        if signum is not None and self.signal_number is None:
            self.signal_number = signum
        self._event.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._event.wait(timeout)

    def installed(self, *signals: int) -> "_InstalledHandlers":
        """Context manager installing this latch as the handler for
        ``signals`` (restoring the previous handlers on exit)."""
        return _InstalledHandlers(self, signals)


class _InstalledHandlers:
    def __init__(self, drain: DrainSignal, signals) -> None:
        self._drain = drain
        self._signals = list(signals)
        self._previous: List = []

    def __enter__(self) -> DrainSignal:
        if threading.current_thread() is not threading.main_thread():
            # Signals are delivered to the main thread only; a
            # background-thread server drains via request_drain().
            self._signals = []
            return self._drain
        for signum in self._signals:
            handler = signal.signal(
                signum,
                lambda s, _frame: self._drain.request_drain(s),
            )
            self._previous.append((signum, handler))
        return self._drain

    def __exit__(self, *exc) -> None:
        for signum, handler in self._previous:
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
        return None
