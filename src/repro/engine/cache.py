"""On-disk result cache for metric series — self-healing and sharded.

Finished series are stored as JSON under ``.repro-cache/`` (or any
directory passed to :class:`MetricEngine`), one file per entry, keyed by
a content hash of

* the graph (node set + edge set),
* the metric name,
* the resolved parameters (including the seed).

Any change to the graph's edges, the metric parameters, or the seed
produces a different key, so stale hits are impossible; the cache never
needs invalidation beyond deleting files.  JSON float serialisation uses
``repr`` round-tripping, so cached series are bitwise-identical to
freshly computed ones.

Entries involving objects without a stable content representation — a
``random.Random`` seed or a policy :class:`Relationships` annotation —
are simply not cached (``cache_key`` returns ``None``).

Layout (many concurrent writers, see ``docs/SERVICE.md``):

* **Sharded directories** — entries live in hash-prefix subdirectories
  (``<cache>/ab/<key>.json``) so a hot shared cache never piles tens of
  thousands of files into one directory.  Entries written by older
  versions into the flat root are still read, and are migrated into
  their shard on first hit.
* **Size-bounded LRU eviction** — with ``max_entries`` and/or
  ``max_bytes`` set, the least-recently-*used* entries (hits refresh an
  entry's mtime) are deleted after each write until the bound holds.
  The eviction scan is serialised through a ``.lock`` file so
  concurrent writers never race each other's scans; writers that find
  the lock busy simply skip their turn (the next write re-checks).
* **Quarantine is capped** — only the newest
  :data:`QUARANTINE_LIMIT` corrupt entries are kept for post-mortem;
  older ones are deleted when the cache is opened.

Durability contract (see ``docs/ROBUSTNESS.md``):

* **Writes are atomic and durable** — tmp file in the same directory,
  fsync, then ``os.replace``; a process killed mid-write can never leave
  a half-written entry under a live key, and two processes committing
  the same key concurrently both leave a complete, valid entry.
* **Every entry carries a content checksum** over its series, verified
  on read.
* **Corruption heals instead of raising** — an unparsable, truncated or
  checksum-mismatched entry is moved to ``<cache>/quarantine/`` (for
  post-mortem) and reported as a miss, so the series is recomputed and
  rewritten; one flipped byte can no longer poison later runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

try:  # pragma: no cover - posix-only; eviction degrades gracefully
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

from repro.graph.core import Graph
from repro.graph.csr import CSR_LAYOUT_VERSION

# Bump when the engine's numeric behaviour changes, so old entries miss.
# v2: entries carry a content checksum (self-healing cache).
# v3: CSR-era results — balls are induced in canonical (ascending node
#     index) member order on the thawed frozen graph, which moves the
#     low bits of order-sensitive evaluators; v2 entries must not be
#     served for them.  (The sharded directory layout is *not* a format
#     change: entry payloads are unchanged and flat-root entries are
#     still readable, so no re-keying is needed.)
CACHE_VERSION = 3

#: The graph-representation schema cache keys are computed against:
#: ``(cache version, CSR layout version)``.  A change to the frozen
#: layout (:data:`repro.graph.csr.CSR_LAYOUT_VERSION`) re-keys every
#: entry even when the cache format itself is unchanged.
REPRESENTATION_VERSION = f"v{CACHE_VERSION}.csr{CSR_LAYOUT_VERSION}"

DEFAULT_CACHE_DIR = ".repro-cache"

#: Subdirectory (inside the cache root) where corrupt entries are moved.
QUARANTINE_DIR = "quarantine"

#: How many quarantined entries are kept (newest first); the rest are
#: deleted when the cache is opened.
QUARANTINE_LIMIT = 32

#: Hex characters of the key hash used as the shard directory name:
#: 2 -> 256 shards.
SHARD_WIDTH = 2

#: Name of the advisory lock file serialising eviction scans.
LOCK_FILE = ".lock"


def _series_checksum(series) -> str:
    payload = repr([(float(x), float(y)) for x, y in series])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def graph_fingerprint(graph: Graph) -> str:
    """Content hash of a graph: its node set and edge set.

    Node identity is taken from ``repr`` so any hashable label works;
    edges are canonicalised (unordered endpoints, sorted list) so two
    graphs with the same structure always hash alike regardless of
    construction order.  Accepts either representation — a graph and
    its frozen :class:`~repro.graph.csr.CSRGraph` fingerprint alike.
    """
    digest = hashlib.sha256()
    for label in sorted(repr(node) for node in graph.nodes()):
        digest.update(label.encode("utf-8"))
        digest.update(b"\x00")
    digest.update(b"--edges--")
    edge_labels = []
    for u, v in graph.iter_edges():
        a, b = sorted((repr(u), repr(v)))
        edge_labels.append(f"{a}\x01{b}")
    for label in sorted(edge_labels):
        digest.update(label.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def cache_key(
    fingerprint: str, metric: str, params: Mapping[str, Any]
) -> Optional[str]:
    """Stable key for one (graph, metric, params) computation.

    Returns ``None`` when the computation is not cacheable: a live
    ``random.Random`` seed or a policy relationship annotation has no
    stable content representation.
    """
    if isinstance(params.get("seed"), random.Random):
        return None
    if params.get("rels") is not None:
        return None
    payload = repr(
        sorted((k, repr(v)) for k, v in params.items() if k != "rels")
    )
    digest = hashlib.sha256()
    digest.update(
        f"{REPRESENTATION_VERSION}|{metric}|{fingerprint}|".encode("utf-8")
    )
    digest.update(payload.encode("utf-8"))
    return f"{metric}-{digest.hexdigest()[:40]}"


def shard_for(key: str) -> str:
    """The shard directory name for ``key`` (a stable hash prefix)."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:SHARD_WIDTH]


class SeriesCache:
    """Sharded directory of cached series, one JSON file per key.

    Corrupt entries (truncated writes, flipped bytes, checksum
    mismatches) are quarantined on read and reported as misses — see the
    module docstring.  ``stats`` counts ``hits``/``misses``/
    ``quarantined``/``evicted`` for observability.

    Parameters
    ----------
    root:
        Cache directory (``.repro-cache/`` by default).
    max_entries, max_bytes:
        Size bounds enforced after each write by LRU eviction (hits
        refresh recency).  ``None`` (the default) disables the bound.
    quarantine_limit:
        How many quarantined entries to keep; older ones are deleted
        when the cache is opened.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        quarantine_limit: int = QUARANTINE_LIMIT,
    ):
        self.root = Path(root or DEFAULT_CACHE_DIR)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.quarantine_limit = int(quarantine_limit)
        self.stats = {"hits": 0, "misses": 0, "quarantined": 0, "evicted": 0}
        self._prune_quarantine()

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / shard_for(key) / f"{key}.json"

    def _legacy_path_for(self, key: str) -> Path:
        """Where a pre-sharding cache stored ``key`` (flat root)."""
        return self.root / f"{key}.json"

    def _iter_entries(self) -> Iterator[Path]:
        """Every committed entry: shard subdirectories plus any legacy
        flat-root files.  Quarantine, tmp and lock files are skipped."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.iterdir()):
            name = path.name
            if name.startswith(".") or name == QUARANTINE_DIR:
                continue
            if path.is_dir():
                if len(name) == SHARD_WIDTH:
                    for entry in sorted(path.glob("*.json")):
                        if not entry.name.startswith("."):
                            yield entry
                continue
            if name.endswith(".json"):
                yield path

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------
    def _prune_quarantine(self) -> None:
        """Keep only the newest ``quarantine_limit`` quarantined entries.

        Runs at open time so an unattended daemon's quarantine directory
        cannot grow without bound across heal cycles.
        """
        target_dir = self.root / QUARANTINE_DIR
        if not target_dir.is_dir():
            return
        entries = []
        for path in target_dir.iterdir():
            try:
                entries.append((path.stat().st_mtime, str(path), path))
            except OSError:
                continue
        entries.sort(reverse=True)  # newest first; path breaks mtime ties
        for _mtime, _name, path in entries[max(0, self.quarantine_limit):]:
            try:
                path.unlink()
            except OSError:
                pass

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry aside so it is recomputed, not raised."""
        self.stats["quarantined"] += 1
        target_dir = self.root / QUARANTINE_DIR
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / path.name)
        except OSError:
            # Quarantine is best-effort; worst case delete the entry.
            try:
                path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[List[Tuple[float, float]]]:
        """The cached series for ``key``, or ``None`` on a miss.

        A corrupt or checksum-mismatched entry is quarantined and
        treated as a miss (the caller recomputes and rewrites it).  A
        hit refreshes the entry's mtime, making eviction LRU rather
        than FIFO; a hit on a legacy flat-root entry migrates it into
        its shard.
        """
        path = self.path_for(key)
        legacy = False
        try:
            handle = open(path, "r", encoding="utf-8")
        except OSError:
            path = self._legacy_path_for(key)
            legacy = True
            try:
                handle = open(path, "r", encoding="utf-8")
            except OSError:
                self.stats["misses"] += 1
                return None
        try:
            with handle:
                payload = json.load(handle)
        except OSError:
            self.stats["misses"] += 1
            return None
        except ValueError:
            self._quarantine(path, "unparsable JSON")
            self.stats["misses"] += 1
            return None
        if not isinstance(payload, dict):
            self._quarantine(path, "not a JSON object")
            self.stats["misses"] += 1
            return None
        if payload.get("version") != CACHE_VERSION:
            # Old-format entries are stale, not corrupt: plain miss.
            self.stats["misses"] += 1
            return None
        try:
            series = [
                (point[0], point[1]) for point in payload["series"]
            ]
            checksum_ok = payload.get("checksum") == _series_checksum(series)
        except (KeyError, TypeError, IndexError, ValueError):
            self._quarantine(path, "malformed series")
            self.stats["misses"] += 1
            return None
        if not checksum_ok:
            self._quarantine(path, "checksum mismatch")
            self.stats["misses"] += 1
            return None
        if legacy:
            # Migrate a pre-sharding entry into its shard; best-effort
            # (a concurrent reader may have won the same migration).
            sharded = self.path_for(key)
            try:
                sharded.parent.mkdir(parents=True, exist_ok=True)
                os.replace(path, sharded)
                path = sharded
            except OSError:
                pass
        try:
            os.utime(path)  # LRU recency: a hit keeps the entry young
        except OSError:
            pass
        self.stats["hits"] += 1
        return series

    def put(self, key: str, metric: str, series: List[Tuple]) -> None:
        """Store ``series``; atomic (tmp + fsync + rename), checksummed,
        then LRU-evict if a size bound is configured."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_VERSION,
            "metric": metric,
            "series": [list(point) for point in series],
            "checksum": _series_checksum(series),
        }
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
                handle.flush()
                try:
                    os.fsync(handle.fileno())
                except OSError:  # pragma: no cover - exotic filesystems
                    pass
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._maybe_evict()

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _maybe_evict(self) -> int:
        """Enforce the size bounds; returns how many entries were evicted.

        The scan-and-delete is serialised through an advisory ``.lock``
        file so two writers never both walk the directory; a writer that
        finds the lock held skips (the holder is already evicting, and
        the next write re-checks).  Entry *writes* never take the lock —
        they are already atomic — so eviction can never block or corrupt
        a commit.
        """
        if self.max_entries is None and self.max_bytes is None:
            return 0
        lock_handle = None
        if fcntl is not None:
            try:
                lock_handle = open(self.root / LOCK_FILE, "a+")
                fcntl.flock(lock_handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                if lock_handle is not None:
                    lock_handle.close()
                return 0  # another process is evicting right now
        try:
            entries = []
            total_bytes = 0
            for path in self._iter_entries():
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, str(path), stat.st_size, path))
                total_bytes += stat.st_size
            entries.sort()  # oldest first; path breaks mtime ties
            evicted = 0
            while entries and (
                (self.max_entries is not None and len(entries) > self.max_entries)
                or (self.max_bytes is not None and total_bytes > self.max_bytes)
            ):
                _mtime, _name, size, path = entries.pop(0)
                try:
                    path.unlink()
                except OSError:
                    continue
                total_bytes -= size
                evicted += 1
            self.stats["evicted"] += evicted
            return evicted
        finally:
            if lock_handle is not None:
                try:
                    fcntl.flock(lock_handle.fileno(), fcntl.LOCK_UN)
                except OSError:  # pragma: no cover
                    pass
                lock_handle.close()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def verify(self) -> Dict[str, int]:
        """Scan every entry, quarantining corrupt ones.

        Returns ``{"ok": n, "quarantined": n}``.  Useful after an
        unclean shutdown: a single pass leaves only entries that will
        load cleanly.
        """
        before = self.stats["quarantined"]
        ok = 0
        for path in list(self._iter_entries()):
            key = path.stem
            if self.get(key) is not None:
                ok += 1
        return {"ok": ok, "quarantined": self.stats["quarantined"] - before}

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        for path in list(self._iter_entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
