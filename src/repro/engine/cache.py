"""On-disk result cache for metric series.

Finished series are stored as JSON under ``.repro-cache/`` (or any
directory passed to :class:`MetricEngine`), one file per entry, keyed by
a content hash of

* the graph (node set + edge set),
* the metric name,
* the resolved parameters (including the seed).

Any change to the graph's edges, the metric parameters, or the seed
produces a different key, so stale hits are impossible; the cache never
needs invalidation beyond deleting files.  JSON float serialisation uses
``repr`` round-tripping, so cached series are bitwise-identical to
freshly computed ones.

Entries involving objects without a stable content representation — a
``random.Random`` seed or a policy :class:`Relationships` annotation —
are simply not cached (``cache_key`` returns ``None``).
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import tempfile
from pathlib import Path
from typing import Any, List, Mapping, Optional, Tuple

from repro.graph.core import Graph

# Bump when the engine's numeric behaviour changes, so old entries miss.
CACHE_VERSION = 1

DEFAULT_CACHE_DIR = ".repro-cache"


def graph_fingerprint(graph: Graph) -> str:
    """Content hash of a graph: its node set and edge set.

    Node identity is taken from ``repr`` so any hashable label works;
    edges are canonicalised (unordered endpoints, sorted list) so two
    graphs with the same structure always hash alike regardless of
    construction order.
    """
    digest = hashlib.sha256()
    for label in sorted(repr(node) for node in graph.nodes()):
        digest.update(label.encode("utf-8"))
        digest.update(b"\x00")
    digest.update(b"--edges--")
    edge_labels = []
    for u, v in graph.iter_edges():
        a, b = sorted((repr(u), repr(v)))
        edge_labels.append(f"{a}\x01{b}")
    for label in sorted(edge_labels):
        digest.update(label.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def cache_key(
    fingerprint: str, metric: str, params: Mapping[str, Any]
) -> Optional[str]:
    """Stable key for one (graph, metric, params) computation.

    Returns ``None`` when the computation is not cacheable: a live
    ``random.Random`` seed or a policy relationship annotation has no
    stable content representation.
    """
    if isinstance(params.get("seed"), random.Random):
        return None
    if params.get("rels") is not None:
        return None
    payload = repr(
        sorted((k, repr(v)) for k, v in params.items() if k != "rels")
    )
    digest = hashlib.sha256()
    digest.update(f"v{CACHE_VERSION}|{metric}|{fingerprint}|".encode("utf-8"))
    digest.update(payload.encode("utf-8"))
    return f"{metric}-{digest.hexdigest()[:40]}"


class SeriesCache:
    """Directory of cached series, one JSON file per key."""

    def __init__(self, root: Optional[str] = None):
        self.root = Path(root or DEFAULT_CACHE_DIR)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[List[Tuple[float, float]]]:
        """The cached series for ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if payload.get("version") != CACHE_VERSION:
            return None
        return [tuple(point) for point in payload["series"]]

    def put(self, key: str, metric: str, series: List[Tuple]) -> None:
        """Store ``series``; write is atomic (tmp file + rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_VERSION,
            "metric": metric,
            "series": [list(point) for point in series],
        }
        fd, tmp = tempfile.mkstemp(
            dir=str(self.root), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        if not self.root.is_dir():
            return 0
        removed = 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
