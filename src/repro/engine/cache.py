"""On-disk result cache for metric series — self-healing.

Finished series are stored as JSON under ``.repro-cache/`` (or any
directory passed to :class:`MetricEngine`), one file per entry, keyed by
a content hash of

* the graph (node set + edge set),
* the metric name,
* the resolved parameters (including the seed).

Any change to the graph's edges, the metric parameters, or the seed
produces a different key, so stale hits are impossible; the cache never
needs invalidation beyond deleting files.  JSON float serialisation uses
``repr`` round-tripping, so cached series are bitwise-identical to
freshly computed ones.

Entries involving objects without a stable content representation — a
``random.Random`` seed or a policy :class:`Relationships` annotation —
are simply not cached (``cache_key`` returns ``None``).

Durability contract (see ``docs/ROBUSTNESS.md``):

* **Writes are atomic and durable** — tmp file in the same directory,
  fsync, then ``os.replace``; a process killed mid-write can never leave
  a half-written entry under a live key.
* **Every entry carries a content checksum** over its series, verified
  on read.
* **Corruption heals instead of raising** — an unparsable, truncated or
  checksum-mismatched entry is moved to ``<cache>/quarantine/`` (for
  post-mortem) and reported as a miss, so the series is recomputed and
  rewritten; one flipped byte can no longer poison later runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.graph.core import Graph
from repro.graph.csr import CSR_LAYOUT_VERSION

# Bump when the engine's numeric behaviour changes, so old entries miss.
# v2: entries carry a content checksum (self-healing cache).
# v3: CSR-era results — balls are induced in canonical (ascending node
#     index) member order on the thawed frozen graph, which moves the
#     low bits of order-sensitive evaluators; v2 entries must not be
#     served for them.
CACHE_VERSION = 3

#: The graph-representation schema cache keys are computed against:
#: ``(cache version, CSR layout version)``.  A change to the frozen
#: layout (:data:`repro.graph.csr.CSR_LAYOUT_VERSION`) re-keys every
#: entry even when the cache format itself is unchanged.
REPRESENTATION_VERSION = f"v{CACHE_VERSION}.csr{CSR_LAYOUT_VERSION}"

DEFAULT_CACHE_DIR = ".repro-cache"

#: Subdirectory (inside the cache root) where corrupt entries are moved.
QUARANTINE_DIR = "quarantine"


def _series_checksum(series) -> str:
    payload = repr([(float(x), float(y)) for x, y in series])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def graph_fingerprint(graph: Graph) -> str:
    """Content hash of a graph: its node set and edge set.

    Node identity is taken from ``repr`` so any hashable label works;
    edges are canonicalised (unordered endpoints, sorted list) so two
    graphs with the same structure always hash alike regardless of
    construction order.  Accepts either representation — a graph and
    its frozen :class:`~repro.graph.csr.CSRGraph` fingerprint alike.
    """
    digest = hashlib.sha256()
    for label in sorted(repr(node) for node in graph.nodes()):
        digest.update(label.encode("utf-8"))
        digest.update(b"\x00")
    digest.update(b"--edges--")
    edge_labels = []
    for u, v in graph.iter_edges():
        a, b = sorted((repr(u), repr(v)))
        edge_labels.append(f"{a}\x01{b}")
    for label in sorted(edge_labels):
        digest.update(label.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def cache_key(
    fingerprint: str, metric: str, params: Mapping[str, Any]
) -> Optional[str]:
    """Stable key for one (graph, metric, params) computation.

    Returns ``None`` when the computation is not cacheable: a live
    ``random.Random`` seed or a policy relationship annotation has no
    stable content representation.
    """
    if isinstance(params.get("seed"), random.Random):
        return None
    if params.get("rels") is not None:
        return None
    payload = repr(
        sorted((k, repr(v)) for k, v in params.items() if k != "rels")
    )
    digest = hashlib.sha256()
    digest.update(
        f"{REPRESENTATION_VERSION}|{metric}|{fingerprint}|".encode("utf-8")
    )
    digest.update(payload.encode("utf-8"))
    return f"{metric}-{digest.hexdigest()[:40]}"


class SeriesCache:
    """Directory of cached series, one JSON file per key.

    Corrupt entries (truncated writes, flipped bytes, checksum
    mismatches) are quarantined on read and reported as misses — see the
    module docstring.  ``stats`` counts ``hits``/``misses``/
    ``quarantined`` for observability.
    """

    def __init__(self, root: Optional[str] = None):
        self.root = Path(root or DEFAULT_CACHE_DIR)
        self.stats = {"hits": 0, "misses": 0, "quarantined": 0}

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry aside so it is recomputed, not raised."""
        self.stats["quarantined"] += 1
        target_dir = self.root / QUARANTINE_DIR
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / path.name)
        except OSError:
            # Quarantine is best-effort; worst case delete the entry.
            try:
                path.unlink()
            except OSError:
                pass

    def get(self, key: str) -> Optional[List[Tuple[float, float]]]:
        """The cached series for ``key``, or ``None`` on a miss.

        A corrupt or checksum-mismatched entry is quarantined and
        treated as a miss (the caller recomputes and rewrites it).
        """
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError:
            self.stats["misses"] += 1
            return None
        except ValueError:
            self._quarantine(path, "unparsable JSON")
            self.stats["misses"] += 1
            return None
        if not isinstance(payload, dict):
            self._quarantine(path, "not a JSON object")
            self.stats["misses"] += 1
            return None
        if payload.get("version") != CACHE_VERSION:
            # Old-format entries are stale, not corrupt: plain miss.
            self.stats["misses"] += 1
            return None
        try:
            series = [
                (point[0], point[1]) for point in payload["series"]
            ]
            checksum_ok = payload.get("checksum") == _series_checksum(series)
        except (KeyError, TypeError, IndexError, ValueError):
            self._quarantine(path, "malformed series")
            self.stats["misses"] += 1
            return None
        if not checksum_ok:
            self._quarantine(path, "checksum mismatch")
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        return series

    def put(self, key: str, metric: str, series: List[Tuple]) -> None:
        """Store ``series``; atomic (tmp + fsync + rename) and checksummed."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_VERSION,
            "metric": metric,
            "series": [list(point) for point in series],
            "checksum": _series_checksum(series),
        }
        fd, tmp = tempfile.mkstemp(
            dir=str(self.root), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
                handle.flush()
                try:
                    os.fsync(handle.fileno())
                except OSError:  # pragma: no cover - exotic filesystems
                    pass
            os.replace(tmp, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def verify(self) -> Dict[str, int]:
        """Scan every entry, quarantining corrupt ones.

        Returns ``{"ok": n, "quarantined": n}``.  Useful after an
        unclean shutdown: a single pass leaves only entries that will
        load cleanly.
        """
        before = self.stats["quarantined"]
        ok = 0
        if self.root.is_dir():
            for path in sorted(self.root.glob("*.json")):
                key = path.stem
                if self.get(key) is not None:
                    ok += 1
        return {"ok": ok, "quarantined": self.stats["quarantined"] - before}

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        if not self.root.is_dir():
            return 0
        removed = 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
