"""The shared-ball :class:`MetricEngine`.

Every series function in :mod:`repro.metrics` measures quantities on the
same family of ball subgraphs.  Computed independently, a full report
re-runs BFS from every center and re-materialises every ball once per
metric.  The engine instead takes a *batch* of
:class:`~repro.engine.requests.MetricRequest` objects and

1. grows each center's balls **once**, evaluating all requested per-ball
   metrics against the shared induced subgraph (and serving distance-only
   metrics like expansion from the same distance maps),
2. optionally fans centers out across a ``ProcessPoolExecutor``
   (``workers=0`` is a serial fallback with identical results), and
3. caches finished series on disk under ``.repro-cache/`` keyed by a
   content hash of (edge set, metric name, params, seed) — see
   :mod:`repro.engine.cache`.

Determinism contract
--------------------
Results are a pure function of ``(graph, metric, params, seed)``:

* Ball centers are sampled exactly as the legacy per-metric functions
  sampled them (including the legacy functions' pre-sampling RNG draws),
  so the engine visits the same centers for the same seed.
* Metrics that randomise per ball (resilience's partitioner, distortion's
  tree heuristics) draw from a per-(metric, center) RNG stream derived
  from the seed and the center index.  A center's stream does not depend
  on which other metrics share the pass, on worker count, or on
  scheduling — so serial and parallel runs, and batched and standalone
  runs, are bitwise identical.
* Per-radius averages are accumulated in center order regardless of
  which worker finished first, so float addition order is fixed.

Representation
--------------
The engine freezes the input graph once per :meth:`compute` into a
:class:`~repro.graph.csr.CSRGraph` (accepting either representation)
and runs BFS through the vectorized kernels in
:mod:`repro.graph.kernels`; worker processes are initialised with the
compact CSR arrays instead of re-pickling the dict-of-sets graph.  Ball
subgraphs are induced on the *canonical thawed* graph (``csr.thaw()``),
so member ordering — and therefore every downstream float — is a pure
function of graph content, independent of adjacency-set insertion
history.  ``MetricEngine(use_csr=False)`` swaps the BFS producer for
the legacy dict implementation while sharing all other code: the dict
path is the oracle the CSR kernels are tested bitwise-equal against
(``repro selfcheck --family csr``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import random
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.engine.cache import SeriesCache, cache_key, graph_fingerprint
from repro.engine.requests import METRICS, MetricRequest, MetricSpec
from repro.generators.base import make_rng
from repro.graph import kernels
from repro.graph.core import Graph
from repro.graph.csr import CSRGraph, csr_from_graph
from repro.graph.traversal import bfs_distances
# _policy_ball_from_dag is the canonical Appendix E ball constructor; the
# engine reuses it so policy balls stay identical to the legacy path.
from repro.metrics.balls import _policy_ball_from_dag, sample_centers
from repro.routing.policy import policy_dag
from repro.runtime import faults as _faults
from repro.runtime import shm as _shm
from repro.runtime.journal import Journal, as_journal
from repro.runtime.status import CenterStatus, RunReport, SeriesStatus
from repro.runtime.supervisor import RuntimePolicy, Supervisor

Series = List[Tuple[float, float]]

# Request parameters that shape the pass itself; everything else is
# forwarded to the per-ball evaluator (e.g. resilience's ``trials``).
_STRUCTURAL_PARAMS = frozenset(
    ("num_centers", "centers", "max_ball_size", "min_ball_size", "rels", "seed")
)


@dataclasses.dataclass
class _Resolved:
    """A request with its parameters, centers and RNG streams pinned."""

    request: MetricRequest
    spec: MetricSpec
    params: Dict[str, Any]
    centers: List[Any]
    center_seeds: Optional[List[int]]
    key: Optional[str] = None
    series: Optional[Series] = None


@dataclasses.dataclass
class _BallMember:
    """One ball metric riding a shared group."""

    rid: int  # index into the pending request list
    name: str
    eval_params: Dict[str, Any]
    center_seeds: Optional[List[int]]


@dataclasses.dataclass
class _BallGroup:
    """Ball metrics that share the exact same ball family."""

    max_ball_size: Optional[int]
    min_ball_size: int
    members: List[_BallMember]


@dataclasses.dataclass
class _Plan:
    """All work sharing one (centers, relationships) pass."""

    centers: List[Any]
    rels: Any
    distance_rids: List[int]
    groups: List[_BallGroup]


class _ComputeContext:
    """A frozen graph plus its lazily-thawed canonical form.

    The context is what execution paths (serial, pool, supervisor) pass
    around instead of the raw graph: pickling it ships only the compact
    CSR arrays — or, after :meth:`publish`, just a shared-memory
    :class:`~repro.runtime.shm.SegmentHandle` that workers attach to
    zero-copy.  Each worker thaws the canonical ``Graph`` at most once.
    ``use_csr=False`` selects the dict-of-sets BFS oracle;
    ``use_batch=False`` keeps the per-ball kernel loop instead of the
    fused batch entry points.  Every other step is shared, so a
    mismatch isolates the layer that diverged.
    """

    __slots__ = ("csr", "use_csr", "use_batch", "_graph", "_segment")

    def __init__(
        self, csr: CSRGraph, use_csr: bool = True, use_batch: bool = True
    ):
        self.csr = csr
        self.use_csr = bool(use_csr)
        self.use_batch = bool(use_batch)
        self._graph: Optional[Graph] = None
        self._segment: Optional[_shm.SharedGraph] = None

    @property
    def graph(self) -> Graph:
        """The canonical thawed graph (built on first use)."""
        if self._graph is None:
            self._graph = self.csr.thaw()
        return self._graph

    def publish(self, transport: str = "auto") -> bool:
        """Move worker transport onto a shared-memory segment.

        After a successful publish, pickling this context ships only
        the segment handle; workers attach read-only by name.  Returns
        whether shm transport is active.  ``transport="copy"`` skips
        publication; ``"shm"`` raises if a segment cannot be created;
        ``"auto"`` silently keeps copy transport on failure.  The
        caller owns the published reference and must pair this with
        :meth:`release` (engine and service do so in ``finally``
        blocks, so exception paths cannot leak segments).
        """
        if transport == "copy":
            return False
        if self._segment is not None and self._segment.alive:
            return True
        segment = _shm.publish(self.csr)
        if segment is None:
            if transport == "shm":
                raise RuntimeError(
                    "shared-memory transport requested but unavailable"
                )
            return False
        self._segment = segment
        return True

    def release(self) -> None:
        """Drop this context's segment reference (idempotent)."""
        segment, self._segment = self._segment, None
        if segment is not None:
            segment.release()

    def __reduce__(self):
        segment = self._segment
        if segment is not None and segment.alive:
            return (
                _ctx_from_handle,
                (segment.handle, self.use_csr, self.use_batch),
            )
        return (_ComputeContext, (self.csr, self.use_csr, self.use_batch))


def _ctx_from_handle(
    handle: "_shm.SegmentHandle", use_csr: bool, use_batch: bool
) -> _ComputeContext:
    """Worker-side unpickle target: attach instead of copying arrays."""
    return _ComputeContext(
        _shm.attach(handle), use_csr=use_csr, use_batch=use_batch
    )


def _center_distances(ctx: _ComputeContext, plan: _Plan, ci: int):
    """Distance vector (and policy DAG, if any) for one center.

    Returns ``(dist, dag)``: ``dist`` is a dense int32 array over node
    indices (``-1`` = unreached); ``dag`` is the policy DAG for policy
    plans, else ``None``.  The CSR kernel and the dict oracle fill the
    same array shape, so everything downstream is representation-blind.
    """
    center = plan.centers[ci]
    csr = ctx.csr
    if plan.rels is not None:
        dag = policy_dag(ctx.graph, plan.rels, center)
        dist = np.full(csr.number_of_nodes(), -1, dtype=np.int32)
        for (node, _state), d in dag.state_dist.items():
            i = csr.index_of(node)
            if dist[i] < 0 or d < dist[i]:
                dist[i] = d
        return dist, dag
    if ctx.use_csr:
        return kernels.bfs_levels(csr, csr.index_of(center)), None
    dist = np.full(csr.number_of_nodes(), -1, dtype=np.int32)
    for node, d in bfs_distances(ctx.graph, center).items():
        dist[csr.index_of(node)] = d
    return dist, None


def _compute_center(ctx: _ComputeContext, plan: _Plan, ci: int):
    """Everything ``plan`` needs from one center, in a single pass.

    Returns ``(counts_at, group_contributions)`` where ``counts_at`` is
    the per-distance node count (``None`` when no distance metric was
    requested) and ``group_contributions[g]`` is a list of
    ``(radius, ball_size, {rid: value})`` tuples for ball group ``g``.
    """
    dist, dag = _center_distances(ctx, plan, ci)
    per_level = kernels.level_counts(dist)
    max_radius = len(per_level) - 1

    counts_at = None
    if plan.distance_rids:
        counts_at = [int(c) for c in per_level]

    group_contributions: List[List[Tuple[int, int, Dict[int, float]]]] = []
    if plan.groups:
        cumulative = np.cumsum(per_level)
        nodes = ctx.csr.node_list()
        for group in plan.groups:
            rngs = {
                member.rid: (
                    random.Random(member.center_seeds[ci])
                    if member.center_seeds is not None
                    else None
                )
                for member in group.members
            }
            # First pass: pin the (radius, size) schedule so the CSR path
            # can slice every ball of this group in one batched call.
            schedule: List[Tuple[int, int]] = []
            prev_size = 0
            for radius in range(1, max_radius + 1):
                size = int(cumulative[radius])
                if size == prev_size:
                    continue
                prev_size = size
                if size < group.min_ball_size:
                    continue
                if group.max_ball_size is not None and size > group.max_ball_size:
                    break
                schedule.append((radius, size))

            # Kernelized metrics run on batched sub-CSRs (bitwise equal to
            # the dict path — each kernel twin makes the same rng draws on
            # the same canonical index order).  With ``use_batch`` the
            # whole schedule of a member's balls is evaluated in one
            # fused call before the per-radius loop: each member draws
            # from its *own* rng stream, so consuming one member's
            # stream across all balls up front is the same draw
            # sequence the per-ball loop makes.  Policy balls (dag) and
            # the dict oracle path keep the per-radius subgraph
            # construction; the dict ball is built lazily, only for
            # members without a kernel twin.
            batch = None
            fused_values: Dict[int, List[float]] = {}
            if ctx.use_csr and dag is None and schedule:
                if any(
                    METRICS[member.name].kernel_evaluator is not None
                    for member in group.members
                ):
                    batch = kernels.BallBatch(
                        ctx.csr,
                        [
                            kernels.ball_members(dist, radius)
                            for radius, _size in schedule
                        ],
                    )
                    if ctx.use_batch:
                        fused = None
                        for member in group.members:
                            spec = METRICS[member.name]
                            if spec.batch_evaluator is None:
                                continue
                            if fused is None:
                                fused = kernels.FusedBatch(batch)
                            fused_values[member.rid] = spec.batch_evaluator(
                                fused, rngs[member.rid], member.eval_params
                            )
            contributions: List[Tuple[int, int, Dict[int, float]]] = []
            for bi, (radius, size) in enumerate(schedule):
                sub = None
                ball = None
                values: Dict[int, float] = {}
                for member in group.members:
                    spec = METRICS[member.name]
                    if member.rid in fused_values:
                        values[member.rid] = fused_values[member.rid][bi]
                        continue
                    if batch is not None and spec.kernel_evaluator is not None:
                        if sub is None:
                            sub = batch.sub_csr(bi)
                        values[member.rid] = spec.kernel_evaluator(
                            sub, rngs[member.rid], member.eval_params
                        )
                        continue
                    if ball is None:
                        if dag is not None:
                            ball = _policy_ball_from_dag(dag, radius)
                        else:
                            # Canonical members: ascending node index.
                            # The induced subgraph (and so every
                            # evaluator float) is a pure function of
                            # graph content.
                            members = kernels.ball_members(dist, radius)
                            ball = ctx.graph.subgraph(
                                [nodes[i] for i in members]
                            )
                    values[member.rid] = spec.evaluator(
                        ball, rngs[member.rid], member.eval_params
                    )
                contributions.append((radius, size, values))
            group_contributions.append(contributions)
    return counts_at, group_contributions


# ----------------------------------------------------------------------
# Process-pool plumbing.  Workers receive the compute context (compact
# CSR arrays, thawed lazily in-worker) and plans once via the pool
# initializer and are then sent only (plan, center) indices.
# ----------------------------------------------------------------------

_WORKER_CTX: Optional[_ComputeContext] = None
_WORKER_PLANS: Optional[List[_Plan]] = None


def _pool_init(ctx: _ComputeContext, plans: List[_Plan]) -> None:
    global _WORKER_CTX, _WORKER_PLANS
    _WORKER_CTX = ctx
    _WORKER_PLANS = plans


def _pool_task(task: Tuple[int, int]):
    pi, ci = task
    return _compute_center(_WORKER_CTX, _WORKER_PLANS[pi], ci)


def _expansion_series(
    n: int,
    per_center_counts: List[List[int]],
    num_centers_used: int,
    max_ball_size: Optional[int],
) -> List[Tuple[int, float]]:
    """Fold per-center distance counts into the E(h) series.

    Identical to the legacy :func:`repro.metrics.expansion.expansion`
    fold: a center whose ball stops growing keeps counting at full reach
    for larger radii.  ``max_ball_size`` (an engine extension) truncates
    the series once the average ball exceeds that many nodes.
    """
    if not per_center_counts or n == 0 or num_centers_used == 0:
        return []
    global_max = max(len(counts) for counts in per_center_counts) - 1
    reach_counts = [0] * (global_max + 1)
    for counts_at in per_center_counts:
        running = 0
        for h in range(global_max + 1):
            if h < len(counts_at):
                running += counts_at[h]
            reach_counts[h] += running
    series: List[Tuple[int, float]] = []
    for h, total in enumerate(reach_counts):
        if max_ball_size is not None and total / num_centers_used > max_ball_size:
            break
        series.append((h, total / (num_centers_used * n)))
    return series


class MetricEngine:
    """One-pass, parallel, cached evaluation of the paper's metrics.

    Parameters
    ----------
    workers:
        Number of worker processes to fan ball centers across.  ``0``
        (the default) computes serially in-process; results are
        identical either way.
    use_csr:
        Run BFS through the vectorized CSR kernels (the default).
        ``False`` swaps in the legacy dict-of-sets BFS — the oracle
        path; results are bitwise identical either way.
    use_batch:
        Evaluate each center's whole radius schedule through the fused
        batch kernels (one call per metric instead of one per ball; the
        default).  ``False`` keeps the per-ball kernel loop; results
        are bitwise identical either way.  ``None`` reads the
        ``REPRO_BATCH`` environment variable (``0``/``off`` disables).
        Implies nothing without ``use_csr``.
    transport:
        How workers receive the frozen graph: ``"auto"`` (the default)
        publishes it to a shared-memory segment when possible and falls
        back to pickled-array copies, ``"shm"`` requires shared memory
        (raises if unavailable), ``"copy"`` always pickles.  ``None``
        reads ``REPRO_TRANSPORT``.  Results are identical either way.
    use_cache:
        Store and reuse finished series on disk.
    cache_dir:
        Cache directory, ``.repro-cache/`` by default.
    runtime:
        A :class:`repro.runtime.RuntimePolicy` enabling the supervised
        fault-tolerant executor (deadlines, retries, pool respawn,
        graceful degradation).  ``None`` keeps the plain executor —
        unless the ``REPRO_FAULTS`` environment variable is set, which
        auto-enables a default policy so injected faults are supervised.
        Fault-free supervised runs are bitwise identical to plain runs.
    journal:
        A :class:`repro.runtime.Journal` (or path) checkpointing every
        completed (graph, plan, center) task; a later engine given the
        same journal skips those tasks entirely (``--resume``).
    cache:
        An already-open :class:`~repro.engine.cache.SeriesCache` to use
        instead of opening ``cache_dir`` — the service daemon shares
        one sharded store across every pass this way.

    After every :meth:`compute`, :attr:`last_run` holds a
    :class:`repro.runtime.RunReport` with the per-center
    ``ok|retried|timeout|failed`` status block of each metric; a metric
    whose retries were exhausted returns a *partial* series (surviving
    centers only) instead of raising.

    Examples
    --------
    >>> from repro.engine import MetricEngine, MetricRequest
    >>> from repro.generators import kary_tree
    >>> engine = MetricEngine(use_cache=False)
    >>> results = engine.compute(kary_tree(3, 5), [
    ...     MetricRequest("expansion", num_centers=8, seed=1),
    ...     MetricRequest("resilience", num_centers=4, seed=1),
    ... ])
    >>> sorted(results)
    ['expansion', 'resilience']
    """

    def __init__(
        self,
        workers: int = 0,
        use_cache: bool = True,
        cache_dir: Optional[str] = None,
        runtime: Optional[RuntimePolicy] = None,
        journal: Optional[Union[Journal, str]] = None,
        use_csr: bool = True,
        cache: Optional[SeriesCache] = None,
        use_batch: Optional[bool] = None,
        transport: Optional[str] = None,
    ):
        self.workers = int(workers)
        self.use_cache = bool(use_cache)
        self.use_csr = bool(use_csr)
        if use_batch is None:
            env = os.environ.get("REPRO_BATCH")
            use_batch = env is None or env.lower() not in ("0", "off", "false")
        self.use_batch = bool(use_batch) and self.use_csr
        if transport is None:
            transport = os.environ.get("REPRO_TRANSPORT") or "auto"
        if transport not in ("auto", "shm", "copy"):
            raise ValueError(
                f"transport must be 'auto', 'shm' or 'copy', got {transport!r}"
            )
        self.transport = transport
        self.cache = cache if cache is not None else SeriesCache(cache_dir)
        if runtime is None and os.environ.get(_faults.ENV_VAR):
            # Injected faults only make sense under supervision.
            runtime = RuntimePolicy()
        self.runtime = runtime
        self.journal = as_journal(journal)
        self.last_run = RunReport()
        self.stats = {
            "cache_hits": 0,
            "cache_misses": 0,
            "centers_computed": 0,
            "journal_skipped": 0,
            "shm_published": 0,
            "shm_reused": 0,
        }

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def compute(
        self,
        graph: Union[Graph, CSRGraph],
        requests: Sequence[Union[MetricRequest, str]],
    ) -> Dict[str, Series]:
        """Evaluate a batch of metric requests in one shared pass.

        ``graph`` may be a mutable :class:`Graph` or an already-frozen
        :class:`~repro.graph.csr.CSRGraph`; it is frozen (once) either
        way.  ``requests`` may mix :class:`MetricRequest` objects and
        bare metric names (which use that metric's default parameters).
        Returns ``{metric name: series}`` in request order.
        """
        reqs = [
            req if isinstance(req, MetricRequest) else MetricRequest(req)
            for req in requests
        ]
        names = [req.name for req in reqs]
        if len(set(names)) != len(names):
            raise ValueError(
                f"duplicate metric names in one compute call: {names}"
            )
        resolved = [self._resolve(graph, req) for req in reqs]
        ctx = _ComputeContext(
            csr_from_graph(graph),
            use_csr=self.use_csr,
            use_batch=self.use_batch,
        )

        if self.use_cache:
            fingerprint = graph_fingerprint(graph)
            for res in resolved:
                res.key = cache_key(fingerprint, res.request.name, res.params)
                if res.key is None:
                    continue
                hit = self.cache.get(res.key)
                if hit is not None:
                    res.series = hit
                    self.stats["cache_hits"] += 1
                else:
                    self.stats["cache_misses"] += 1

        report = RunReport()
        for res in resolved:
            if res.series is not None:
                report.metrics[res.request.name] = SeriesStatus(
                    metric=res.request.name, source="cache"
                )

        pending = [res for res in resolved if res.series is None]
        if pending:
            plans = self._build_plans(pending)
            per_plan_results, per_plan_statuses = self._execute(
                ctx, plans, pending
            )
            self._merge(ctx, plans, per_plan_results, pending)
            self._attach_statuses(plans, per_plan_statuses, pending, report)
            if self.use_cache:
                for res in pending:
                    # Partial (degraded) series must never be served as
                    # complete later: only fully-ok series are cached.
                    if (
                        res.key is not None
                        and report.metrics[res.request.name].complete
                    ):
                        self.cache.put(res.key, res.request.name, res.series)
        self.last_run = report
        return {res.request.name: res.series for res in resolved}

    def compute_one(
        self, graph: Union[Graph, CSRGraph], name: str, **params: Any
    ) -> Series:
        """Convenience wrapper: one metric, parameters as kwargs."""
        return self.compute(graph, [MetricRequest(name, params)])[name]

    def clear_cache(self) -> int:
        """Delete every cached series; returns the number removed."""
        return self.cache.clear()

    # ------------------------------------------------------------------
    # Resolution and planning
    # ------------------------------------------------------------------
    def _resolve(
        self, graph: Union[Graph, CSRGraph], request: MetricRequest
    ) -> _Resolved:
        spec = METRICS[request.name]
        params = spec.resolve_params(request.params)
        rng = make_rng(params["seed"])
        # Legacy RNG protocol: metrics with a per-ball RNG drew their
        # stream seed *before* sampling centers; replicating the draw
        # keeps the engine on the same centers as the legacy functions.
        master_bits = rng.getrandbits(32) if spec.uses_rng else None
        centers = params["centers"]
        if centers is None:
            centers = sample_centers(graph, params["num_centers"], seed=rng)
        else:
            centers = list(centers)
        center_seeds = None
        if spec.uses_rng:
            seeder = random.Random(master_bits)
            center_seeds = [seeder.getrandbits(64) for _ in centers]
        return _Resolved(
            request=request,
            spec=spec,
            params=params,
            centers=centers,
            center_seeds=center_seeds,
        )

    def _build_plans(self, pending: List[_Resolved]) -> List[_Plan]:
        plans: List[_Plan] = []
        plans_by_key: Dict[Tuple, _Plan] = {}
        for rid, res in enumerate(pending):
            rels = res.params["rels"]
            key = (
                tuple(res.centers),
                id(rels) if rels is not None else None,
            )
            plan = plans_by_key.get(key)
            if plan is None:
                plan = _Plan(
                    centers=res.centers,
                    rels=rels,
                    distance_rids=[],
                    groups=[],
                )
                plans_by_key[key] = plan
                plans.append(plan)
            if res.spec.kind == "distance":
                plan.distance_rids.append(rid)
                continue
            gkey = (res.params["max_ball_size"], res.params["min_ball_size"])
            group = next(
                (
                    g
                    for g in plan.groups
                    if (g.max_ball_size, g.min_ball_size) == gkey
                ),
                None,
            )
            if group is None:
                group = _BallGroup(
                    max_ball_size=gkey[0], min_ball_size=gkey[1], members=[]
                )
                plan.groups.append(group)
            group.members.append(
                _BallMember(
                    rid=rid,
                    name=res.request.name,
                    eval_params={
                        k: v
                        for k, v in res.params.items()
                        if k not in _STRUCTURAL_PARAMS
                    },
                    center_seeds=res.center_seeds,
                )
            )
        return plans

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute(
        self, ctx: _ComputeContext, plans: List[_Plan], pending: List[_Resolved]
    ):
        """Run every (plan, center) task; returns per-plan result lists
        (aligned with center order, ``None`` for failed centers) and
        per-plan :class:`CenterStatus` lists (``None`` without runtime).
        """
        tasks = [
            (pi, ci)
            for pi, plan in enumerate(plans)
            for ci in range(len(plan.centers))
        ]
        # Publish the frozen graph to shared memory before any path
        # that pickles the context for worker processes; the reference
        # is dropped in ``finally`` so no exception (including a
        # BrokenProcessPool mid-respawn) can leak the segment.
        will_fork = self.workers > 0 and (
            self.runtime is not None or len(tasks) > 1
        )
        if will_fork and ctx.publish(self.transport):
            if ctx._segment is not None and ctx._segment.refs > 1:
                self.stats["shm_reused"] += 1
            else:
                self.stats["shm_published"] += 1
        try:
            task_statuses: Optional[List[CenterStatus]] = None
            if self.runtime is not None:
                flat, task_statuses = self._execute_supervised(
                    ctx, plans, tasks, pending
                )
            else:
                self.stats["centers_computed"] += len(tasks)
                if self.workers > 0 and len(tasks) > 1:
                    flat = self._execute_parallel(ctx, plans, tasks)
                else:
                    flat = [
                        _compute_center(ctx, plans[pi], ci)
                        for pi, ci in tasks
                    ]
        finally:
            ctx.release()
        per_plan: List[List[Any]] = [[] for _ in plans]
        per_plan_statuses: Optional[List[List[CenterStatus]]] = (
            [[] for _ in plans] if task_statuses is not None else None
        )
        for ti, ((pi, _ci), result) in enumerate(zip(tasks, flat)):
            # Tasks were generated (and execution preserves) center
            # order, so appending here keeps the merge order
            # deterministic.
            per_plan[pi].append(result)
            if per_plan_statuses is not None:
                per_plan_statuses[pi].append(task_statuses[ti])
        return per_plan, per_plan_statuses

    def _execute_parallel(self, ctx, plans, tasks):
        max_workers = min(self.workers, len(tasks))
        try:
            pool = ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=_pool_init,
                initargs=(ctx, plans),
            )
        except (OSError, PermissionError):  # pragma: no cover - sandboxes
            # Environments that forbid subprocesses fall back to the
            # serial path; results are identical by construction.
            return [_compute_center(ctx, plans[pi], ci) for pi, ci in tasks]
        try:
            with pool:
                return list(pool.map(_pool_task, tasks))
        except BaseException:
            # An interrupted run (Ctrl-C, a worker exception) must not
            # orphan workers: cancel queued tasks and stop without
            # waiting on whatever is still executing.
            pool.shutdown(wait=False, cancel_futures=True)
            raise

    def _execute_supervised(self, ctx, plans, tasks, pending):
        """The fault-tolerant path: journal preload + supervised run."""
        metric_names = [
            self._plan_metric_names(plan, pending) for plan in plans
        ]
        task_keys: List[Optional[str]] = [None] * len(tasks)
        preloaded: Dict[int, Any] = {}
        if self.journal is not None:
            fingerprint = graph_fingerprint(ctx.csr)
            plan_sigs = [
                self._plan_signature(fingerprint, plan, pending)
                for plan in plans
            ]
            for ti, (pi, ci) in enumerate(tasks):
                if plan_sigs[pi] is None:
                    continue
                task_keys[ti] = f"center|{plan_sigs[pi]}|{ci}"
                stored = self.journal.get(task_keys[ti])
                if stored is not None:
                    decoded = self._decode_center_result(plans[pi], stored)
                    if decoded is not None:
                        preloaded[ti] = decoded
        self.stats["centers_computed"] += len(tasks) - len(preloaded)
        self.stats["journal_skipped"] += len(preloaded)

        def on_done(ti: int, result) -> None:
            if self.journal is not None and task_keys[ti] is not None:
                pi = tasks[ti][0]
                self.journal.append(
                    task_keys[ti],
                    self._encode_center_result(plans[pi], result),
                )

        supervisor = Supervisor(self.runtime, self.workers, _compute_center)
        return supervisor.run(
            ctx, plans, tasks, metric_names, preloaded, on_done
        )

    # ------------------------------------------------------------------
    # Journal plumbing: plan signatures and center-result codecs
    # ------------------------------------------------------------------
    @staticmethod
    def _plan_metric_names(plan: _Plan, pending: List[_Resolved]) -> Tuple[str, ...]:
        names = [pending[rid].request.name for rid in plan.distance_rids]
        for group in plan.groups:
            names.extend(member.name for member in group.members)
        return tuple(sorted(names))

    @staticmethod
    def _plan_signature(
        fingerprint: str, plan: _Plan, pending: List[_Resolved]
    ) -> Optional[str]:
        """Content hash identifying one plan across runs, or ``None``
        when the plan is not journalable (policy relationships have no
        stable content representation, exactly as in the series cache).
        """
        if plan.rels is not None:
            return None
        members: List[Tuple] = []
        for rid in plan.distance_rids:
            res = pending[rid]
            members.append(
                (
                    "distance",
                    res.request.name,
                    repr(sorted((k, repr(v)) for k, v in res.params.items())),
                )
            )
        for group in plan.groups:
            for member in group.members:
                members.append(
                    (
                        "ball",
                        member.name,
                        repr(sorted(
                            (k, repr(v)) for k, v in member.eval_params.items()
                        )),
                        group.min_ball_size,
                        group.max_ball_size,
                    )
                )
        payload = repr(
            (fingerprint, [repr(c) for c in plan.centers], sorted(members))
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]

    @staticmethod
    def _encode_center_result(plan: _Plan, result) -> Dict[str, Any]:
        """JSON-able form of one center result.  Per-ball values are
        keyed by *metric name* (stable across runs) rather than request
        index (which depends on what the cache already served).
        """
        counts_at, group_contributions = result
        encoded_groups = []
        for group, contributions in zip(plan.groups, group_contributions):
            rid_to_name = {m.rid: m.name for m in group.members}
            encoded_groups.append(
                [
                    [
                        radius,
                        size,
                        [[rid_to_name[rid], value] for rid, value in values.items()],
                    ]
                    for radius, size, values in contributions
                ]
            )
        return {"counts": counts_at, "groups": encoded_groups}

    @staticmethod
    def _decode_center_result(plan: _Plan, stored) -> Optional[Tuple]:
        """Inverse of :meth:`_encode_center_result`; ``None`` if the
        stored payload does not match the current plan shape."""
        try:
            counts_at = stored["counts"]
            encoded_groups = stored["groups"]
            if len(encoded_groups) != len(plan.groups):
                return None
            group_contributions = []
            for group, contributions in zip(plan.groups, encoded_groups):
                name_to_rid = {m.name: m.rid for m in group.members}
                decoded = []
                for radius, size, values in contributions:
                    decoded.append(
                        (
                            int(radius),
                            int(size),
                            {name_to_rid[name]: value for name, value in values},
                        )
                    )
                group_contributions.append(decoded)
        except (KeyError, TypeError, ValueError):
            return None
        return counts_at, group_contributions

    def _attach_statuses(
        self,
        plans: List[_Plan],
        per_plan_statuses: Optional[List[List[CenterStatus]]],
        pending: List[_Resolved],
        report: RunReport,
    ) -> None:
        rid_to_plan: Dict[int, int] = {}
        for pi, plan in enumerate(plans):
            for rid in plan.distance_rids:
                rid_to_plan[rid] = pi
            for group in plan.groups:
                for member in group.members:
                    rid_to_plan[member.rid] = pi
        for rid, res in enumerate(pending):
            name = res.request.name
            if per_plan_statuses is None:
                report.metrics[name] = SeriesStatus(metric=name, source="legacy")
                continue
            statuses = per_plan_statuses[rid_to_plan[rid]]
            report.metrics[name] = SeriesStatus(
                metric=name,
                source="computed",
                states=[status.state for status in statuses],
                errors=[status.error for status in statuses],
            )

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def _merge(
        self,
        ctx: _ComputeContext,
        plans: List[_Plan],
        per_plan_results,
        pending: List[_Resolved],
    ) -> None:
        n = ctx.csr.number_of_nodes()
        for plan, center_results in zip(plans, per_plan_results):
            # Centers whose retries were exhausted under the supervised
            # runtime arrive as None: the series is averaged over the
            # surviving centers (the per-center status block records the
            # gap).  Without the runtime every result is present and
            # this filter is the identity, keeping legacy runs bitwise
            # identical.
            surviving = [result for result in center_results if result is not None]
            if plan.distance_rids:
                per_center_counts = [counts for counts, _groups in surviving]
                for rid in plan.distance_rids:
                    res = pending[rid]
                    res.series = _expansion_series(
                        n,
                        per_center_counts,
                        len(surviving),
                        res.params["max_ball_size"],
                    )
            for gi, group in enumerate(plan.groups):
                accs: Dict[int, Dict[int, List[float]]] = {
                    member.rid: {} for member in group.members
                }
                for _counts, group_results in surviving:
                    for radius, size, values in group_results[gi]:
                        for rid, value in values.items():
                            bucket = accs[rid].setdefault(
                                radius, [0.0, 0.0, 0]
                            )
                            bucket[0] += size
                            bucket[1] += value
                            bucket[2] += 1
                for member in group.members:
                    acc = accs[member.rid]
                    series: Series = []
                    for radius in sorted(acc):
                        sum_n, sum_value, count = acc[radius]
                        series.append((sum_n / count, sum_value / count))
                    pending[member.rid].series = series
