"""Metric requests and the engine's metric registry.

Every large-scale metric in the paper is defined over the same family of
ball subgraphs (Section 3.2.1): grow a ball of radius h around a center,
evaluate a quantity on the induced subgraph, average per radius.  The
registry below captures each metric as a :class:`MetricSpec` so the
:class:`repro.engine.MetricEngine` can grow each center's balls **once**
and evaluate every requested metric against the shared subgraph.

Two kinds of metric exist:

``distance``
    Needs only the per-center distance map (expansion: count nodes within
    radius h).  No subgraph is ever materialised.

``ball``
    Needs the induced ball subgraph at every radius (resilience,
    distortion, vertex cover, biconnectivity, clustering, path length).

The registry also records each metric's legacy keyword defaults and its
random-number protocol, so the engine reproduces the legacy per-metric
functions exactly (same centers, same floats) — see
:mod:`repro.engine.core` for the determinism contract.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.graph.components import count_biconnected_components
from repro.graph.core import Graph
from repro.graph.cover import vertex_cover_size
from repro.graph.csr import CSRGraph
from repro.graph.kernels import (
    FusedBatch,
    batch_biconnected_counts,
    batch_vertex_cover_sizes,
    count_biconnected_csr,
    vertex_cover_size_csr,
)
from repro.graph.kernels_flow import resilience_csr, resilience_csr_batch
from repro.graph.kernels_trees import distortion_csr, distortion_csr_batch
from repro.metrics.clustering import clustering_coefficient
from repro.metrics.distortion import distortion_of
from repro.metrics.pathlength import average_ball_path_length
from repro.metrics.resilience import resilience_of

# A per-ball evaluator: (ball subgraph, per-center RNG or None, params).
Evaluator = Callable[[Graph, Optional[random.Random], Mapping[str, Any]], float]

# A CSR kernel evaluator: (ball sub-CSR, per-center RNG or None, params).
KernelEvaluator = Callable[
    [CSRGraph, Optional[random.Random], Mapping[str, Any]], float
]

# A fused batch evaluator: (whole fused batch, per-center RNG or None,
# params) -> one float per ball, aligned with the batch's schedule.
BatchEvaluator = Callable[
    [FusedBatch, Optional[random.Random], Mapping[str, Any]], List[float]
]


@dataclasses.dataclass(frozen=True)
class MetricSpec:
    """How the engine computes one named metric.

    ``evaluator`` is the dict-of-sets oracle; ``kernel_evaluator``, when
    present, is its CSR twin — the engine dispatches it on the batched
    ball sub-CSRs when ``use_csr`` is on, and the two must return
    bitwise-identical floats (the ``kernels`` selfcheck family and
    ``tests/test_kernels_metrics.py`` enforce it).  ``batch_evaluator``,
    when present, evaluates one center's *whole* fused radius schedule
    in a single call (``use_batch``); it must return the same floats as
    mapping the kernel evaluator over ``sub_csr`` with the same rng —
    the ``batch`` selfcheck family and ``tests/test_fused_batch.py``
    enforce that too.
    """

    name: str
    kind: str  # "distance" | "ball"
    uses_rng: bool
    defaults: Tuple[Tuple[str, Any], ...]
    evaluator: Optional[Evaluator] = None
    kernel_evaluator: Optional[KernelEvaluator] = None
    batch_evaluator: Optional[BatchEvaluator] = None

    def resolve_params(self, overrides: Mapping[str, Any]) -> Dict[str, Any]:
        """Defaults merged with ``overrides``; unknown keys are an error."""
        params = dict(self.defaults)
        allowed = set(params)
        unknown = set(overrides) - allowed
        if unknown:
            raise TypeError(
                f"metric {self.name!r} got unexpected parameters "
                f"{sorted(unknown)}; accepts {sorted(allowed)}"
            )
        params.update(overrides)
        return params


def _eval_resilience(ball, rng, params):
    return resilience_of(ball, rng=rng, trials=params["trials"])


def _eval_distortion(ball, rng, params):
    return distortion_of(ball, rng=rng)


def _eval_vertex_cover(ball, rng, params):
    return float(vertex_cover_size(ball))


def _eval_biconnectivity(ball, rng, params):
    return float(count_biconnected_components(ball))


def _eval_clustering(ball, rng, params):
    return clustering_coefficient(ball)


def _eval_path_length(ball, rng, params):
    return average_ball_path_length(ball)


def _kernel_resilience(sub, rng, params):
    return resilience_csr(sub, rng=rng, trials=params["trials"])


def _kernel_distortion(sub, rng, params):
    return distortion_csr(sub, rng=rng)


def _kernel_vertex_cover(sub, rng, params):
    return float(vertex_cover_size_csr(sub))


def _kernel_biconnectivity(sub, rng, params):
    return float(count_biconnected_csr(sub))


def _batch_resilience(fused, rng, params):
    return resilience_csr_batch(fused, rng=rng, trials=params["trials"])


def _batch_distortion(fused, rng, params):
    return distortion_csr_batch(fused, rng=rng)


def _batch_vertex_cover(fused, rng, params):
    return [float(size) for size in batch_vertex_cover_sizes(fused)]


def _batch_biconnectivity(fused, rng, params):
    return [float(count) for count in batch_biconnected_counts(fused)]


# The shared kwargs contract (see docs/API.md "Series function contract"):
# every ball-growing metric accepts num_centers / centers / max_ball_size
# / rels / seed; extras (trials, min_ball_size) are metric-specific.
def _ball_defaults(num_centers: int, max_ball_size: Optional[int], **extra):
    base = (
        ("num_centers", num_centers),
        ("centers", None),
        ("max_ball_size", max_ball_size),
        ("min_ball_size", 3),
        ("rels", None),
        ("seed", None),
    )
    return base + tuple(sorted(extra.items()))


METRICS: Dict[str, MetricSpec] = {
    spec.name: spec
    for spec in (
        MetricSpec(
            name="expansion",
            kind="distance",
            uses_rng=False,
            defaults=(
                ("num_centers", 48),
                ("centers", None),
                ("max_ball_size", None),
                ("rels", None),
                ("seed", None),
            ),
        ),
        MetricSpec(
            name="resilience",
            kind="ball",
            uses_rng=True,
            defaults=_ball_defaults(10, 1500, trials=3),
            evaluator=_eval_resilience,
            kernel_evaluator=_kernel_resilience,
            batch_evaluator=_batch_resilience,
        ),
        MetricSpec(
            name="distortion",
            kind="ball",
            uses_rng=True,
            defaults=_ball_defaults(10, 1500),
            evaluator=_eval_distortion,
            kernel_evaluator=_kernel_distortion,
            batch_evaluator=_batch_distortion,
        ),
        MetricSpec(
            name="vertex_cover",
            kind="ball",
            uses_rng=False,
            defaults=_ball_defaults(10, 2500),
            evaluator=_eval_vertex_cover,
            kernel_evaluator=_kernel_vertex_cover,
            batch_evaluator=_batch_vertex_cover,
        ),
        MetricSpec(
            name="biconnectivity",
            kind="ball",
            uses_rng=False,
            defaults=_ball_defaults(10, 2500),
            evaluator=_eval_biconnectivity,
            kernel_evaluator=_kernel_biconnectivity,
            batch_evaluator=_batch_biconnectivity,
        ),
        MetricSpec(
            name="clustering",
            kind="ball",
            uses_rng=False,
            defaults=_ball_defaults(10, 2500),
            evaluator=_eval_clustering,
        ),
        MetricSpec(
            name="path_length",
            kind="ball",
            uses_rng=False,
            defaults=_ball_defaults(8, 1500),
            evaluator=_eval_path_length,
        ),
    )
}


class MetricRequest:
    """One metric to evaluate, with optional parameter overrides.

    >>> MetricRequest("resilience", num_centers=6, max_ball_size=900)
    MetricRequest('resilience', max_ball_size=900, num_centers=6)

    Parameters may be given as a mapping or as keyword arguments; unknown
    parameter names raise ``TypeError`` immediately.
    """

    __slots__ = ("name", "params")

    def __init__(
        self,
        name: str,
        params: Optional[Mapping[str, Any]] = None,
        **kwargs: Any,
    ):
        if name not in METRICS:
            raise KeyError(
                f"unknown metric {name!r}; available: {sorted(METRICS)}"
            )
        merged: Dict[str, Any] = dict(params or {})
        merged.update(kwargs)
        # Validate parameter names eagerly (values are checked at compute
        # time, where the graph is known).
        METRICS[name].resolve_params(merged)
        self.name = name
        self.params = merged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        args = "".join(
            f", {k}={self.params[k]!r}" for k in sorted(self.params)
        )
        return f"MetricRequest({self.name!r}{args})"
