"""Shared-ball metric engine: one-pass, parallel, cached evaluation.

All of the paper's large-scale metrics are defined over the same family
of ball subgraphs.  :class:`MetricEngine` evaluates a *batch* of
:class:`MetricRequest` objects by growing each center's balls once and
evaluating every requested metric against the shared subgraph, fanning
centers across worker processes, and caching finished series on disk.
The legacy per-metric functions in :mod:`repro.metrics` are thin
wrappers over this engine.  See ``docs/ENGINE.md``.
"""

from repro.engine.cache import (
    CACHE_VERSION,
    DEFAULT_CACHE_DIR,
    REPRESENTATION_VERSION,
    SeriesCache,
    cache_key,
    graph_fingerprint,
)
from repro.engine.core import MetricEngine
from repro.engine.requests import METRICS, MetricRequest, MetricSpec


def engine_metric_names():
    """Names accepted by :class:`MetricRequest`, sorted."""
    return sorted(METRICS)


__all__ = [
    "MetricEngine",
    "MetricRequest",
    "MetricSpec",
    "METRICS",
    "SeriesCache",
    "cache_key",
    "graph_fingerprint",
    "engine_metric_names",
    "CACHE_VERSION",
    "REPRESENTATION_VERSION",
    "DEFAULT_CACHE_DIR",
]
