"""ASCII plotting for metric series.

The paper's evidence is curve *shapes* (exponential vs polynomial
expansion, flat vs growing resilience...), so the benches can render
series as terminal scatter plots — log or linear axes per Figure 2's
conventions — making the shapes visible directly in pytest output.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

Point = Tuple[float, float]

_MARKS = "ox+*#@%&"


def ascii_plot(
    series: Dict[str, Sequence[Point]],
    width: int = 64,
    height: int = 18,
    log_x: bool = False,
    log_y: bool = False,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more (x, y) series on a shared-axes ASCII canvas.

    Each series gets its own mark character; the legend maps marks to
    series names.  Nonpositive values are dropped on log axes.
    """
    if not series:
        return "(no series)"

    def tx(x: float) -> float:
        return math.log10(x) if log_x else x

    def ty(y: float) -> float:
        return math.log10(y) if log_y else y

    cleaned: Dict[str, List[Tuple[float, float]]] = {}
    for name, points in series.items():
        kept = [
            (tx(x), ty(y))
            for x, y in points
            if (not log_x or x > 0) and (not log_y or y > 0)
        ]
        if kept:
            cleaned[name] = kept
    if not cleaned:
        return "(no plottable points)"

    xs = [x for pts in cleaned.values() for x, _ in pts]
    ys = [y for pts in cleaned.values() for _, y in pts]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for idx, (name, points) in enumerate(cleaned.items()):
        mark = _MARKS[idx % len(_MARKS)]
        for x, y in points:
            col = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int((y - y_min) / y_span * (height - 1))
            canvas[row][col] = mark

    def fmt(value: float, logged: bool) -> str:
        real = 10 ** value if logged else value
        if real == 0:
            return "0"
        if abs(real) >= 1000 or abs(real) < 0.01:
            return f"{real:.1e}"
        return f"{real:.3g}"

    lines = []
    y_top = fmt(y_max, log_y)
    y_bottom = fmt(y_min, log_y)
    label_width = max(len(y_top), len(y_bottom))
    for row_idx, row in enumerate(canvas):
        if row_idx == 0:
            prefix = y_top.rjust(label_width)
        elif row_idx == height - 1:
            prefix = y_bottom.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}|")
    x_left = fmt(x_min, log_x)
    x_right = fmt(x_max, log_x)
    axis_pad = " " * (label_width + 2)
    gap = max(1, width - len(x_left) - len(x_right))
    lines.append(f"{axis_pad}{x_left}{' ' * gap}{x_right}")
    scale = []
    if log_x:
        scale.append("log x")
    if log_y:
        scale.append("log y")
    scale_note = f" [{', '.join(scale)}]" if scale else ""
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={name}" for i, name in enumerate(cleaned)
    )
    lines.append(f"{axis_pad}{x_label} vs {y_label}{scale_note}:  {legend}")
    return "\n".join(lines)
