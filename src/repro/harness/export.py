"""Exporting metric series for external plotting.

The benches print ASCII tables and plots; users who want publication
figures can dump any series produced by :mod:`repro.metrics` or
:mod:`repro.hierarchy` to CSV or JSON with these helpers, one file per
figure, in the exact shape the paper plots (x, y columns per series).
"""

from __future__ import annotations

import csv
import json
import os
from typing import Dict, Sequence, Tuple, Union

PathLike = Union[str, "os.PathLike[str]"]
Series = Sequence[Tuple[float, float]]


def write_series_csv(
    series: Dict[str, Series],
    path: PathLike,
    x_name: str = "x",
    y_name: str = "y",
) -> None:
    """Write named series to a long-format CSV: series, x, y."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series", x_name, y_name])
        for name, points in series.items():
            for x, y in points:
                writer.writerow([name, x, y])


def read_series_csv(path: PathLike) -> Dict[str, list]:
    """Read back a CSV written by :func:`write_series_csv`."""
    result: Dict[str, list] = {}
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if len(header) != 3:
            raise ValueError(f"{path}: expected 3 columns, got {len(header)}")
        for row in reader:
            name, x, y = row
            result.setdefault(name, []).append((float(x), float(y)))
    return result


def write_series_json(
    series: Dict[str, Series],
    path: PathLike,
    metadata: Dict[str, object] = None,
    status: Dict[str, object] = None,
) -> None:
    """Write named series (plus optional metadata) as JSON.

    ``status`` attaches a per-metric runtime status block — typically
    ``engine.last_run.to_payload()`` — so downstream plots can tell a
    complete series from one that lost centers to exhausted retries
    (``"complete": false``).  Readers that predate the field ignore it.
    """
    payload = {
        "metadata": metadata or {},
        "series": {
            name: [[float(x), float(y)] for x, y in points]
            for name, points in series.items()
        },
    }
    if status is not None:
        payload["status"] = status
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def read_series_json(path: PathLike) -> Dict[str, list]:
    """Read back the series map from :func:`write_series_json` output."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return {
        name: [(x, y) for x, y in points]
        for name, points in payload["series"].items()
    }
