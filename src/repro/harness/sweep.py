"""Parameter-space exploration (Appendix C / Figure 11).

The paper lists, for each generator, the parameter vectors explored and
the resulting node count and average degree, and reports (Section 4.4)
that the conclusions hold across the sweep except in deliberately
extreme regimes.  This module drives the same sweeps at reproduction
scale and can attach the L/H signature of each instance.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.classify import (
    ClassifierThresholds,
    signature as metric_signature,
)
from repro.engine import MetricEngine, MetricRequest
from repro.generators.base import Seed
from repro.graph.core import Graph


@dataclasses.dataclass
class SweepRow:
    """One explored instance: its parameters and summary statistics."""

    generator: str
    params: str
    nodes: int
    average_degree: float
    signature: Optional[str] = None


def sweep(
    generator_name: str,
    make: Callable[..., Graph],
    param_sets: Sequence[Dict],
    classify: bool = False,
    num_centers: int = 6,
    max_ball_size: int = 700,
    thresholds: ClassifierThresholds = ClassifierThresholds(),
    seed: Seed = 5,
    workers: int = 0,
    use_cache: bool = False,
    cache_dir: Optional[str] = None,
) -> List[SweepRow]:
    """Run a generator across parameter sets.

    With ``classify``, the three basic metrics are computed on each
    instance — in one shared :class:`MetricEngine` pass per instance —
    and the L/H signature attached: the Section 4.4 robustness check
    ("for most parameter values the results are in agreement with what
    we have presented").  ``workers``/``use_cache`` configure the
    engine's process fan-out and on-disk series cache.
    """
    engine = MetricEngine(
        workers=workers, use_cache=use_cache, cache_dir=cache_dir
    )
    rows: List[SweepRow] = []
    for params in param_sets:
        graph = make(seed=seed, **params)
        row = SweepRow(
            generator=generator_name,
            params=", ".join(f"{k}={v}" for k, v in params.items()),
            nodes=graph.number_of_nodes(),
            average_degree=round(graph.average_degree(), 2),
        )
        if classify:
            series = engine.compute(
                graph,
                [
                    MetricRequest("expansion", num_centers=24, seed=seed),
                    MetricRequest(
                        "resilience",
                        num_centers=num_centers,
                        max_ball_size=max_ball_size,
                        seed=seed,
                    ),
                    MetricRequest(
                        "distortion",
                        num_centers=num_centers,
                        max_ball_size=max_ball_size,
                        seed=seed,
                    ),
                ],
            )
            row.signature = metric_signature(
                series["expansion"],
                series["resilience"],
                series["distortion"],
                graph.number_of_nodes(),
                thresholds,
            )
        rows.append(row)
    return rows
