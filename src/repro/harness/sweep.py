"""Parameter-space exploration (Appendix C / Figure 11) — resumable.

The paper lists, for each generator, the parameter vectors explored and
the resulting node count and average degree, and reports (Section 4.4)
that the conclusions hold across the sweep except in deliberately
extreme regimes.  This module drives the same sweeps at reproduction
scale and can attach the L/H signature of each instance.

Sweeps are long; they now checkpoint.  Given a ``journal`` (a
:class:`repro.runtime.Journal` or a path), every finished row is
appended to the journal — and, through the engine, every finished
(graph, metric, center) task as well — so a run killed mid-sweep and
restarted with ``resume=True`` skips all journaled rows and resumes the
interrupted row at the first uncomputed center.  A ``runtime`` policy
additionally supervises the metric computations (deadlines, retries,
degradation); each row then carries the engine's per-center status
summary.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.classify import (
    ClassifierThresholds,
    signature as metric_signature,
)
from repro.engine import MetricEngine, MetricRequest
from repro.generators import barabasi_albert, erdos_renyi, glp, plrg, waxman
from repro.generators.base import Seed
from repro.graph.core import Graph
from repro.runtime import Journal, RuntimePolicy, as_journal


@dataclasses.dataclass
class SweepRow:
    """One explored instance: its parameters and summary statistics."""

    generator: str
    params: str
    nodes: int
    average_degree: float
    signature: Optional[str] = None
    #: Engine status summary ("ok", "resilience: 5 ok, 1 failed", ...);
    #: ``None`` when the row was not classified.
    status: Optional[str] = None
    #: True when this row was restored from a resume journal.
    resumed: bool = False


#: Default parameter grids for ``repro sweep``: a reproduction-scale
#: slice of Appendix C's vectors for each degree-based / random
#: generator (structural generators take dataclass params; drive those
#: through :func:`sweep` directly).
SWEEP_GRIDS: Dict[str, Tuple[Callable[..., Graph], List[Dict]]] = {
    "plrg": (
        plrg,
        [
            {"n": 400, "exponent": 2.246},
            {"n": 900, "exponent": 2.246},
            {"n": 900, "exponent": 2.1},
        ],
    ),
    "ba": (
        barabasi_albert,
        [{"n": 400, "m": 2}, {"n": 900, "m": 2}, {"n": 900, "m": 3}],
    ),
    "glp": (glp, [{"n": 400}, {"n": 900}]),
    "waxman": (
        waxman,
        [
            {"n": 400, "alpha": 0.06, "beta": 0.3},
            {"n": 900, "alpha": 0.025, "beta": 0.3},
        ],
    ),
    "random": (
        erdos_renyi,
        [{"n": 400, "p": 0.011}, {"n": 900, "p": 0.0047}],
    ),
}


def sweep_row_key(
    generator_name: str,
    params_text: str,
    classify: bool,
    num_centers: int,
    max_ball_size: int,
    seed,
) -> str:
    """Stable identity of one sweep row.

    Doubles as the journal checkpoint key *and* the service daemon's
    coalescing token for ``sweep-row`` requests, so a row in flight on
    the daemon is never computed twice for concurrent clients.
    """
    return (
        f"sweeprow|{generator_name}|{params_text}|classify={classify}"
        f"|centers={num_centers}|ball={max_ball_size}|seed={seed!r}"
    )


_row_key = sweep_row_key  # historical internal name


def sweep(
    generator_name: str,
    make: Callable[..., Graph],
    param_sets: Sequence[Dict],
    classify: bool = False,
    num_centers: int = 6,
    max_ball_size: int = 700,
    thresholds: ClassifierThresholds = ClassifierThresholds(),
    seed: Seed = 5,
    workers: int = 0,
    use_cache: bool = False,
    cache_dir: Optional[str] = None,
    runtime: Optional[RuntimePolicy] = None,
    journal: Optional[Union[Journal, str]] = None,
    resume: bool = False,
    engine: Optional[MetricEngine] = None,
) -> List[SweepRow]:
    """Run a generator across parameter sets.

    With ``classify``, the three basic metrics are computed on each
    instance — in one shared :class:`MetricEngine` pass per instance —
    and the L/H signature attached: the Section 4.4 robustness check
    ("for most parameter values the results are in agreement with what
    we have presented").  ``workers``/``use_cache`` configure the
    engine's process fan-out and on-disk series cache.

    ``journal``+``resume`` checkpoint the sweep (see module docstring).
    When ``journal`` is a path, this function owns its lifecycle and
    truncates it unless ``resume`` is set; a :class:`Journal` instance
    is used as-is (the caller owns truncation).  ``engine`` may inject a
    preconfigured engine (it should share the same journal).
    """
    owns_journal = journal is not None and not isinstance(journal, Journal)
    journal = as_journal(journal)
    if owns_journal and not resume:
        journal.reset()
    if engine is None:
        engine = MetricEngine(
            workers=workers,
            use_cache=use_cache,
            cache_dir=cache_dir,
            runtime=runtime,
            journal=journal,
        )
    rows: List[SweepRow] = []
    for params in param_sets:
        params_text = ", ".join(f"{k}={v}" for k, v in params.items())
        key = _row_key(
            generator_name, params_text, classify, num_centers,
            max_ball_size, seed,
        )
        if resume and journal is not None:
            stored = journal.get(key)
            if stored is not None:
                row = SweepRow(**stored)
                row.resumed = True
                rows.append(row)
                continue
        graph = make(seed=seed, **params)
        row = SweepRow(
            generator=generator_name,
            params=params_text,
            nodes=graph.number_of_nodes(),
            average_degree=round(graph.average_degree(), 2),
        )
        if classify:
            series = engine.compute(
                graph,
                [
                    MetricRequest("expansion", num_centers=24, seed=seed),
                    MetricRequest(
                        "resilience",
                        num_centers=num_centers,
                        max_ball_size=max_ball_size,
                        seed=seed,
                    ),
                    MetricRequest(
                        "distortion",
                        num_centers=num_centers,
                        max_ball_size=max_ball_size,
                        seed=seed,
                    ),
                ],
            )
            row.signature = metric_signature(
                series["expansion"],
                series["resilience"],
                series["distortion"],
                graph.number_of_nodes(),
                thresholds,
            )
            run = engine.last_run
            row.status = "ok" if run.ok else "; ".join(
                f"{name}: {run.metrics[name].summary()}"
                for name in run.degraded_metrics
            )
        if journal is not None:
            payload = dataclasses.asdict(row)
            payload["resumed"] = False
            journal.append(key, payload)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Service integration: one sweep row as a daemon request
# ----------------------------------------------------------------------

def sweep_row_request(
    generator_name: str,
    params: Dict,
    classify: bool = False,
    num_centers: int = 6,
    max_ball_size: int = 700,
    seed: Seed = 5,
) -> Dict:
    """The ``sweep-row`` service payload for one grid point.

    A whole ``repro sweep`` grid can be fanned out to a daemon by
    sending one of these per row; the daemon coalesces duplicates by
    :func:`sweep_row_key` and executes each through
    :func:`run_sweep_row`, so distributed and local sweeps produce
    identical :class:`SweepRow` payloads.
    """
    if generator_name not in SWEEP_GRIDS:
        raise ValueError(
            f"unknown sweep generator {generator_name!r}; "
            f"available: {sorted(SWEEP_GRIDS)}"
        )
    return {
        "generator": generator_name,
        "params": dict(params),
        "classify": bool(classify),
        "centers": int(num_centers),
        "max_ball": int(max_ball_size),
        "seed": seed,
    }


def run_sweep_row(
    payload: Dict, engine: Optional[MetricEngine] = None
) -> SweepRow:
    """Execute one ``sweep-row`` service payload; inverse of
    :func:`sweep_row_request`.

    Runs exactly the :func:`sweep` path for a single parameter set, so
    a daemon-computed row is identical to the same row of a local
    ``repro sweep`` run (generator seeding, engine requests and
    signature thresholds included).
    """
    generator_name = payload["generator"]
    if generator_name not in SWEEP_GRIDS:
        raise ValueError(
            f"unknown sweep generator {generator_name!r}; "
            f"available: {sorted(SWEEP_GRIDS)}"
        )
    make, _grid = SWEEP_GRIDS[generator_name]
    rows = sweep(
        generator_name,
        make,
        [dict(payload["params"])],
        classify=bool(payload.get("classify", False)),
        num_centers=int(payload.get("centers", 6)),
        max_ball_size=int(payload.get("max_ball", 700)),
        seed=payload.get("seed", 5),
        engine=engine,
    )
    return rows[0]
