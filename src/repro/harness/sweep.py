"""Parameter-space exploration (Appendix C / Figure 11) — resumable.

The paper lists, for each generator, the parameter vectors explored and
the resulting node count and average degree, and reports (Section 4.4)
that the conclusions hold across the sweep except in deliberately
extreme regimes.  This module drives the same sweeps at reproduction
scale and can attach the L/H signature of each instance.

Sweeps are long; they now checkpoint.  Given a ``journal`` (a
:class:`repro.runtime.Journal` or a path), every finished row is
appended to the journal — and, through the engine, every finished
(graph, metric, center) task as well — so a run killed mid-sweep and
restarted with ``resume=True`` skips all journaled rows and resumes the
interrupted row at the first uncomputed center.  A ``runtime`` policy
additionally supervises the metric computations (deadlines, retries,
degradation); each row then carries the engine's per-center status
summary.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.classify import (
    ClassifierThresholds,
    signature as metric_signature,
)
from repro.engine import MetricEngine, MetricRequest
from repro.generators import barabasi_albert, erdos_renyi, glp, plrg, waxman
from repro.generators.base import Seed
from repro.graph.core import Graph
from repro.runtime import Journal, RuntimePolicy, as_journal
from repro.runtime.shards import (
    DEFAULT_STALE_AFTER,
    ShardLease,
    assign_shard,
    atomic_write_text,
    shard_lease_path,
    shard_report_path,
    shard_segment_path,
    write_manifest,
)


@dataclasses.dataclass
class SweepRow:
    """One explored instance: its parameters and summary statistics."""

    generator: str
    params: str
    nodes: int
    average_degree: float
    signature: Optional[str] = None
    #: Engine status summary ("ok", "resilience: 5 ok, 1 failed", ...);
    #: ``None`` when the row was not classified.
    status: Optional[str] = None
    #: True when this row was restored from a resume journal.
    resumed: bool = False


#: Default parameter grids for ``repro sweep``: a reproduction-scale
#: slice of Appendix C's vectors for each degree-based / random
#: generator (structural generators take dataclass params; drive those
#: through :func:`sweep` directly).
SWEEP_GRIDS: Dict[str, Tuple[Callable[..., Graph], List[Dict]]] = {
    "plrg": (
        plrg,
        [
            {"n": 400, "exponent": 2.246},
            {"n": 900, "exponent": 2.246},
            {"n": 900, "exponent": 2.1},
        ],
    ),
    "ba": (
        barabasi_albert,
        [{"n": 400, "m": 2}, {"n": 900, "m": 2}, {"n": 900, "m": 3}],
    ),
    "glp": (glp, [{"n": 400}, {"n": 900}]),
    "waxman": (
        waxman,
        [
            {"n": 400, "alpha": 0.06, "beta": 0.3},
            {"n": 900, "alpha": 0.025, "beta": 0.3},
        ],
    ),
    "random": (
        erdos_renyi,
        [{"n": 400, "p": 0.011}, {"n": 900, "p": 0.0047}],
    ),
}


def sweep_row_key(
    generator_name: str,
    params_text: str,
    classify: bool,
    num_centers: int,
    max_ball_size: int,
    seed,
) -> str:
    """Stable identity of one sweep row.

    Doubles as the journal checkpoint key *and* the service daemon's
    coalescing token for ``sweep-row`` requests, so a row in flight on
    the daemon is never computed twice for concurrent clients.
    """
    return (
        f"sweeprow|{generator_name}|{params_text}|classify={classify}"
        f"|centers={num_centers}|ball={max_ball_size}|seed={seed!r}"
    )


_row_key = sweep_row_key  # historical internal name


def sweep_shard_key(journal: str, num_shards: int, shard_id: int) -> str:
    """Identity of one shard of a partitioned sweep.

    The service daemon's coalescing token for ``sweep-shard`` requests:
    two clients asking for the same shard of the same journal get one
    execution (the shard lease would reject the second anyway — this
    just answers both from the single run).
    """
    return f"sweepshard|{journal}|{num_shards}|{shard_id}"


def sweep_tasks(
    generators: Optional[Sequence[str]] = None,
    classify: bool = False,
    num_centers: int = 6,
    max_ball_size: int = 700,
    seed: Seed = 5,
) -> List[Tuple[str, Callable[..., Graph], Dict, str]]:
    """The full ordered task space of a (multi-generator) sweep.

    One ``(generator_name, make, params, row_key)`` tuple per grid
    point, in grid order — the row ordering that the shard manifest
    records and that both the partitioner and the merge index into.
    """
    names = list(generators) if generators else sorted(SWEEP_GRIDS)
    tasks = []
    for name in names:
        if name not in SWEEP_GRIDS:
            raise ValueError(
                f"unknown sweep generator {name!r}; "
                f"available: {sorted(SWEEP_GRIDS)}"
            )
        make, grid = SWEEP_GRIDS[name]
        for params in grid:
            params_text = ", ".join(f"{k}={v}" for k, v in params.items())
            key = sweep_row_key(
                name, params_text, classify, num_centers, max_ball_size, seed
            )
            tasks.append((name, make, dict(params), key))
    return tasks


def sweep(
    generator_name: str,
    make: Callable[..., Graph],
    param_sets: Sequence[Dict],
    classify: bool = False,
    num_centers: int = 6,
    max_ball_size: int = 700,
    thresholds: ClassifierThresholds = ClassifierThresholds(),
    seed: Seed = 5,
    workers: int = 0,
    use_cache: bool = False,
    cache_dir: Optional[str] = None,
    runtime: Optional[RuntimePolicy] = None,
    journal: Optional[Union[Journal, str]] = None,
    resume: bool = False,
    engine: Optional[MetricEngine] = None,
    on_row: Optional[Callable[[SweepRow], None]] = None,
) -> List[SweepRow]:
    """Run a generator across parameter sets.

    With ``classify``, the three basic metrics are computed on each
    instance — in one shared :class:`MetricEngine` pass per instance —
    and the L/H signature attached: the Section 4.4 robustness check
    ("for most parameter values the results are in agreement with what
    we have presented").  ``workers``/``use_cache`` configure the
    engine's process fan-out and on-disk series cache.

    ``journal``+``resume`` checkpoint the sweep (see module docstring).
    When ``journal`` is a path, this function owns its lifecycle and
    truncates it unless ``resume`` is set; a :class:`Journal` instance
    is used as-is (the caller owns truncation).  ``engine`` may inject a
    preconfigured engine (it should share the same journal).  ``on_row``
    is called after every finished (or resumed) row — shard workers use
    it to heartbeat their lease between rows.
    """
    owns_journal = journal is not None and not isinstance(journal, Journal)
    journal = as_journal(journal)
    if owns_journal and not resume:
        journal.reset()
    if engine is None:
        engine = MetricEngine(
            workers=workers,
            use_cache=use_cache,
            cache_dir=cache_dir,
            runtime=runtime,
            journal=journal,
        )
    rows: List[SweepRow] = []
    for params in param_sets:
        params_text = ", ".join(f"{k}={v}" for k, v in params.items())
        key = _row_key(
            generator_name, params_text, classify, num_centers,
            max_ball_size, seed,
        )
        if resume and journal is not None:
            stored = journal.get(key)
            if stored is not None:
                row = SweepRow(**stored)
                row.resumed = True
                rows.append(row)
                if on_row is not None:
                    on_row(row)
                continue
        graph = make(seed=seed, **params)
        row = SweepRow(
            generator=generator_name,
            params=params_text,
            nodes=graph.number_of_nodes(),
            average_degree=round(graph.average_degree(), 2),
        )
        if classify:
            series = engine.compute(
                graph,
                [
                    MetricRequest("expansion", num_centers=24, seed=seed),
                    MetricRequest(
                        "resilience",
                        num_centers=num_centers,
                        max_ball_size=max_ball_size,
                        seed=seed,
                    ),
                    MetricRequest(
                        "distortion",
                        num_centers=num_centers,
                        max_ball_size=max_ball_size,
                        seed=seed,
                    ),
                ],
            )
            row.signature = metric_signature(
                series["expansion"],
                series["resilience"],
                series["distortion"],
                graph.number_of_nodes(),
                thresholds,
            )
            run = engine.last_run
            row.status = "ok" if run.ok else "; ".join(
                f"{name}: {run.metrics[name].summary()}"
                for name in run.degraded_metrics
            )
        if journal is not None:
            payload = dataclasses.asdict(row)
            payload["resumed"] = False
            journal.append(key, payload)
        rows.append(row)
        if on_row is not None:
            on_row(row)
    return rows


# ----------------------------------------------------------------------
# Partitioned execution: whole sweeps, optionally one shard at a time
# ----------------------------------------------------------------------

@dataclasses.dataclass
class SweepRun:
    """Result of :func:`run_sweep`: the rows plus shard bookkeeping."""

    rows: List[SweepRow]
    #: The canonical journal path the sweep was aimed at (``None`` when
    #: the run was not journaled).
    journal: Optional[str] = None
    #: This worker's journal segment (shard mode only).
    segment: Optional[str] = None
    shard_id: Optional[int] = None
    num_shards: Optional[int] = None
    #: Rows assigned to this worker (== ``len(rows)`` on success).
    assigned_rows: int = 0
    #: Corrupt records quarantined while loading the journal/segment.
    corrupt_lines: int = 0
    #: The per-shard run report JSON (shard mode only).
    report_path: Optional[str] = None

    @property
    def resumed_rows(self) -> int:
        return sum(1 for row in self.rows if row.resumed)


def render_sweep_table(rows: Sequence[SweepRow]) -> str:
    """The ``repro sweep`` results table for ``rows``.

    Shared by ``repro sweep``, ``repro merge-journals`` and the chaos
    harness, so a merged sharded sweep renders **byte-identical** output
    to the unsharded run it reassembles.
    """
    from repro.harness.tables import format_table

    table_rows = []
    for row in rows:
        table_rows.append(
            [
                row.generator,
                row.params,
                row.nodes,
                f"{row.average_degree:.2f}",
                row.signature or "-",
                (row.status or "-") + (" (resumed)" if row.resumed else ""),
            ]
        )
    return format_table(
        ["generator", "params", "nodes", "avg deg", "signature", "status"],
        table_rows,
    )


def rows_from_journal(
    journal: Union[Journal, str], row_keys: Sequence[str]
) -> List[SweepRow]:
    """Reconstruct the sweep rows a journal holds, in manifest order.

    Rows without a journal record are simply absent from the result
    (the merge reports them as holes); ``resumed`` is left ``False`` so
    the rendered table matches a fresh unsharded run.
    """
    journal = as_journal(journal)
    rows: List[SweepRow] = []
    for key in row_keys:
        payload = journal.get(key)
        if payload is not None:
            rows.append(SweepRow(**payload))
    return rows


def run_sweep(
    generators: Optional[Sequence[str]] = None,
    classify: bool = False,
    num_centers: int = 6,
    max_ball_size: int = 700,
    thresholds: ClassifierThresholds = ClassifierThresholds(),
    seed: Seed = 5,
    workers: int = 0,
    use_cache: bool = False,
    cache_dir: Optional[str] = None,
    runtime: Optional[RuntimePolicy] = None,
    journal: Optional[str] = None,
    resume: bool = False,
    num_shards: Optional[int] = None,
    shard_id: Optional[int] = None,
    lease_stale_after: float = DEFAULT_STALE_AFTER,
    on_row: Optional[Callable[[SweepRow], None]] = None,
) -> SweepRun:
    """Run a whole sweep — all generators' grids — or one shard of it.

    Unsharded (``num_shards=None``): every grid point of ``generators``
    (default: all of :data:`SWEEP_GRIDS`, sorted) runs in manifest
    order through one shared engine, journaling to ``journal`` exactly
    like ``repro sweep``.

    Sharded (``num_shards=N, shard_id=K``): the manifest is written
    next to ``journal`` (idempotently — every shard writes the same
    bytes), rows with ``index % N == K`` are claimed under a
    :class:`~repro.runtime.ShardLease` (heartbeat refreshed after every
    row; a stale lease from a killed worker is taken over after
    ``lease_stale_after`` seconds), results go to the shard's own
    journal segment, and a per-shard report JSON is dropped beside it.
    Afterwards :func:`repro.runtime.merge_segments` reassembles the
    canonical journal.  ``resume=True`` reloads the segment first so a
    crashed shard recomputes nothing it already journaled.
    """
    if num_shards is not None:
        if journal is None:
            raise ValueError("a sharded sweep requires a journal path")
        if shard_id is None or not 0 <= shard_id < num_shards:
            raise ValueError(
                f"shard_id must be in [0, {num_shards}), got {shard_id!r}"
            )
    tasks = sweep_tasks(generators, classify, num_centers, max_ball_size, seed)
    row_keys = [key for (_n, _m, _p, key) in tasks]
    names = list(generators) if generators else sorted(SWEEP_GRIDS)
    if journal is not None:
        # A fresh run claims the manifest outright (all shards of one
        # sweep force identical bytes); a resume must agree with it.
        write_manifest(
            journal,
            row_keys,
            num_shards if num_shards is not None else 1,
            meta={
                "generators": names,
                "classify": bool(classify),
                "centers": int(num_centers),
                "ball": int(max_ball_size),
                "seed": repr(seed),
            },
            force=not resume,
        )

    def _run_tasks(selected, journal_obj, engine, beat) -> List[SweepRow]:
        rows: List[SweepRow] = []
        for name, make, params, _key in selected:
            rows.extend(
                sweep(
                    name,
                    make,
                    [params],
                    classify=classify,
                    num_centers=num_centers,
                    max_ball_size=max_ball_size,
                    thresholds=thresholds,
                    seed=seed,
                    journal=journal_obj,
                    resume=resume,
                    engine=engine,
                    on_row=beat,
                )
            )
        return rows

    if num_shards is None:
        journal_obj = Journal(journal) if journal is not None else None
        if journal_obj is not None and not resume:
            journal_obj.reset()
        engine = MetricEngine(
            workers=workers,
            use_cache=use_cache,
            cache_dir=cache_dir,
            runtime=runtime,
            journal=journal_obj,
        )
        rows = _run_tasks(tasks, journal_obj, engine, on_row)
        return SweepRun(
            rows=rows,
            journal=str(journal) if journal is not None else None,
            assigned_rows=len(tasks),
            corrupt_lines=journal_obj.corrupt_lines if journal_obj else 0,
        )

    assigned = [
        task
        for index, task in enumerate(tasks)
        if assign_shard(index, num_shards) == shard_id
    ]
    segment = shard_segment_path(journal, shard_id)
    lease = ShardLease(
        shard_lease_path(journal, shard_id), stale_after=lease_stale_after
    )
    with lease:
        journal_obj = Journal(segment)
        if not resume:
            journal_obj.reset()
        engine = MetricEngine(
            workers=workers,
            use_cache=use_cache,
            cache_dir=cache_dir,
            runtime=runtime,
            journal=journal_obj,
        )

        def _beat(row: SweepRow) -> None:
            lease.heartbeat()
            if on_row is not None:
                on_row(row)

        rows = _run_tasks(assigned, journal_obj, engine, _beat)
        run = SweepRun(
            rows=rows,
            journal=str(journal),
            segment=str(segment),
            shard_id=shard_id,
            num_shards=num_shards,
            assigned_rows=len(assigned),
            corrupt_lines=journal_obj.corrupt_lines,
        )
        report_path = shard_report_path(journal, shard_id)
        report = {
            "shard": shard_id,
            "num_shards": num_shards,
            "journal": str(journal),
            "segment": str(segment),
            "assigned_rows": run.assigned_rows,
            "completed_rows": len(rows),
            "resumed_rows": run.resumed_rows,
            "corrupt_lines": run.corrupt_lines,
            "rows": [dataclasses.asdict(row) for row in rows],
        }
        atomic_write_text(
            report_path,
            json.dumps(report, sort_keys=True, separators=(",", ":")) + "\n",
        )
        run.report_path = str(report_path)
    return run


# ----------------------------------------------------------------------
# Service integration: one sweep row as a daemon request
# ----------------------------------------------------------------------

def sweep_row_request(
    generator_name: str,
    params: Dict,
    classify: bool = False,
    num_centers: int = 6,
    max_ball_size: int = 700,
    seed: Seed = 5,
) -> Dict:
    """The ``sweep-row`` service payload for one grid point.

    A whole ``repro sweep`` grid can be fanned out to a daemon by
    sending one of these per row; the daemon coalesces duplicates by
    :func:`sweep_row_key` and executes each through
    :func:`run_sweep_row`, so distributed and local sweeps produce
    identical :class:`SweepRow` payloads.
    """
    if generator_name not in SWEEP_GRIDS:
        raise ValueError(
            f"unknown sweep generator {generator_name!r}; "
            f"available: {sorted(SWEEP_GRIDS)}"
        )
    return {
        "generator": generator_name,
        "params": dict(params),
        "classify": bool(classify),
        "centers": int(num_centers),
        "max_ball": int(max_ball_size),
        "seed": seed,
    }


def run_sweep_row(
    payload: Dict, engine: Optional[MetricEngine] = None
) -> SweepRow:
    """Execute one ``sweep-row`` service payload; inverse of
    :func:`sweep_row_request`.

    Runs exactly the :func:`sweep` path for a single parameter set, so
    a daemon-computed row is identical to the same row of a local
    ``repro sweep`` run (generator seeding, engine requests and
    signature thresholds included).
    """
    generator_name = payload["generator"]
    if generator_name not in SWEEP_GRIDS:
        raise ValueError(
            f"unknown sweep generator {generator_name!r}; "
            f"available: {sorted(SWEEP_GRIDS)}"
        )
    make, _grid = SWEEP_GRIDS[generator_name]
    rows = sweep(
        generator_name,
        make,
        [dict(payload["params"])],
        classify=bool(payload.get("classify", False)),
        num_centers=int(payload.get("centers", 6)),
        max_ball_size=int(payload.get("max_ball", 700)),
        seed=payload.get("seed", 5),
        engine=engine,
    )
    return rows[0]
