"""The topology registry — Figure 1's table of instances, at
reproduction scale.

Two scales are provided:

* ``default`` — the scale used by the expansion/resilience/distortion
  benches (1–5k-node generated graphs matching Figure 1's own sizes
  where feasible; the synthetic AS/RL pair stands in for the measured
  graphs, see DESIGN.md);
* ``small`` — few-hundred-node instances for the link-value analysis of
  Section 5, which is quadratic in nodes (the paper itself had to fall
  back to the RL *core* for the same reason).

Instances are memoised per (scale, name) so that the benchmark suite can
share graphs across benches without regenerating them.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.generators import (
    TiersParams,
    TransitStubParams,
    complete_graph,
)
from repro.generators import registry as generator_registry
from repro.graph.core import Graph
from repro.internet import (
    ASGraphParams,
    RouterExpansionParams,
    rl_core,
    synthetic_as_graph,
    synthetic_router_graph,
)
from repro.routing.policy import Relationships

CATEGORY_MEASURED = "measured"
CATEGORY_GENERATED = "generated"
CATEGORY_DEGREE_BASED = "degree-based"
CATEGORY_CANONICAL = "canonical"


@dataclasses.dataclass
class TopologyEntry:
    """One registry row: a graph, its category, and (for the measured
    substitutes) its relationship annotation for policy routing."""

    name: str
    graph: Graph
    category: str
    relationships: Optional[Relationships] = None


_CACHE: Dict[tuple, TopologyEntry] = {}


def _measured_pair(scale: str) -> Dict[str, TopologyEntry]:
    as_nodes = 2200 if scale == "default" else 160
    as_graph = synthetic_as_graph(ASGraphParams(n=as_nodes), seed=7)
    rl = synthetic_router_graph(
        as_graph, RouterExpansionParams(), seed=11
    )
    entries = {
        "AS": TopologyEntry(
            name="AS",
            graph=as_graph.graph,
            category=CATEGORY_MEASURED,
            relationships=as_graph.relationships,
        ),
    }
    if scale == "default":
        entries["RL"] = TopologyEntry(
            name="RL",
            graph=rl.graph,
            category=CATEGORY_MEASURED,
            relationships=rl.relationships,
        )
    else:
        # Link values run on the RL core, per footnote 29.
        core = rl_core(rl.graph)
        entries["RL"] = TopologyEntry(
            name="RL",
            graph=core,
            category=CATEGORY_MEASURED,
            relationships=rl.relationships,
        )
    return entries


_DEFAULT_BUILDERS: Dict[str, Callable[[], TopologyEntry]] = {}
_SMALL_BUILDERS: Dict[str, Callable[[], TopologyEntry]] = {}


def _register(scale_builders, name, category, make) -> None:
    scale_builders[name] = lambda: TopologyEntry(
        name=name, graph=make(), category=category
    )


def _build(name: str, n: int, **params):
    """Build a pinned instance through the generator-spec front door."""
    return generator_registry.get(name).build(n, **params)


# --- default scale (Figure 2 benches) ---------------------------------
_register(
    _DEFAULT_BUILDERS,
    "Tree",
    CATEGORY_CANONICAL,
    lambda: _build("tree", 1093, branching=3, depth=6),
)
_register(
    _DEFAULT_BUILDERS, "Mesh", CATEGORY_CANONICAL, lambda: _build("mesh", 900, rows=30)
)
_register(
    _DEFAULT_BUILDERS,
    "Random",
    CATEGORY_CANONICAL,
    lambda: _build("random", 2200, p=0.0019, seed=3),
)
_register(
    _DEFAULT_BUILDERS, "Linear", CATEGORY_CANONICAL, lambda: _build("linear", 600)
)
_register(
    _DEFAULT_BUILDERS, "Complete", CATEGORY_CANONICAL, lambda: complete_graph(64)
)
_register(
    _DEFAULT_BUILDERS,
    "Waxman",
    CATEGORY_GENERATED,
    lambda: _build("waxman", 2200, alpha=0.01, beta=0.30, seed=3),
)
_register(
    _DEFAULT_BUILDERS,
    "TS",
    CATEGORY_GENERATED,
    lambda: _build("transit-stub", 1008, params=TransitStubParams(), seed=3),
)
_register(
    _DEFAULT_BUILDERS,
    "Tiers",
    CATEGORY_GENERATED,
    lambda: _build("tiers", 5000, params=TiersParams(), seed=3),
)
_register(
    _DEFAULT_BUILDERS,
    "PLRG",
    CATEGORY_DEGREE_BASED,
    lambda: _build("plrg", 2600, exponent=2.246, seed=3),
)
_register(
    _DEFAULT_BUILDERS,
    "B-A",
    CATEGORY_DEGREE_BASED,
    lambda: _build("ba", 2200, m=2, seed=3),
)
_register(
    _DEFAULT_BUILDERS,
    "Brite",
    CATEGORY_DEGREE_BASED,
    lambda: _build("brite", 2200, m=2, seed=3),
)
_register(
    _DEFAULT_BUILDERS, "BT", CATEGORY_DEGREE_BASED, lambda: _build("glp", 2200, seed=3)
)
_register(
    _DEFAULT_BUILDERS,
    "Inet",
    CATEGORY_DEGREE_BASED,
    lambda: _build("inet", 2200, seed=3),
)

# --- small scale (Section 5 link-value benches) ------------------------
_register(
    _SMALL_BUILDERS,
    "Tree",
    CATEGORY_CANONICAL,
    lambda: _build("tree", 121, branching=3, depth=4),
)
_register(
    _SMALL_BUILDERS, "Mesh", CATEGORY_CANONICAL, lambda: _build("mesh", 225, rows=15)
)
_register(
    _SMALL_BUILDERS,
    "Random",
    CATEGORY_CANONICAL,
    lambda: _build("random", 330, p=0.013, seed=3),
)
_register(
    _SMALL_BUILDERS,
    "Waxman",
    CATEGORY_GENERATED,
    lambda: _build("waxman", 330, alpha=0.065, beta=0.30, seed=3),
)
_register(
    _SMALL_BUILDERS,
    "TS",
    CATEGORY_GENERATED,
    lambda: _build(
        "transit-stub",
        304,
        params=TransitStubParams(
            stubs_per_transit_node=2,
            transit_domains=4,
            nodes_per_transit=4,
            nodes_per_stub=6,
        ),
        seed=3,
    ),
)
_register(
    _SMALL_BUILDERS,
    "Tiers",
    CATEGORY_GENERATED,
    lambda: _build(
        "tiers",
        276,
        params=TiersParams(
            mans_per_wan=8,
            lans_per_man=4,
            wan_nodes=60,
            man_nodes=15,
            lan_nodes=3,
        ),
        seed=3,
    ),
)
_register(
    _SMALL_BUILDERS,
    "PLRG",
    CATEGORY_DEGREE_BASED,
    lambda: _build("plrg", 450, exponent=2.246, seed=3),
)
_register(
    _SMALL_BUILDERS,
    "B-A",
    CATEGORY_DEGREE_BASED,
    lambda: _build("ba", 380, m=2, seed=3),
)
_register(
    _SMALL_BUILDERS,
    "Brite",
    CATEGORY_DEGREE_BASED,
    lambda: _build("brite", 380, m=2, seed=3),
)
_register(
    _SMALL_BUILDERS, "BT", CATEGORY_DEGREE_BASED, lambda: _build("glp", 380, seed=3)
)
_register(
    _SMALL_BUILDERS,
    "Inet",
    CATEGORY_DEGREE_BASED,
    lambda: _build("inet", 380, seed=3),
)


def topology(name: str, scale: str = "default") -> TopologyEntry:
    """Fetch (and cache) one registry instance.

    ``name`` is a Figure-1 name ("AS", "RL", "PLRG", "TS", "Tiers",
    "Waxman", "Mesh", "Random", "Tree", ...); ``scale`` is "default" or
    "small".
    """
    key = (scale, name)
    if key in _CACHE:
        return _CACHE[key]
    if name in ("AS", "RL"):
        pair = _measured_pair(scale)
        _CACHE[(scale, "AS")] = pair["AS"]
        _CACHE[(scale, "RL")] = pair["RL"]
        return _CACHE[key]
    builders = _DEFAULT_BUILDERS if scale == "default" else _SMALL_BUILDERS
    if name not in builders:
        raise KeyError(f"unknown topology {name!r} at scale {scale!r}")
    entry = builders[name]()
    _CACHE[key] = entry
    return entry


def topology_names(scale: str = "default") -> List[str]:
    """All registry names available at a scale (measured pair included)."""
    builders = _DEFAULT_BUILDERS if scale == "default" else _SMALL_BUILDERS
    return ["AS", "RL"] + list(builders)


FIGURE1_ROWS = (
    ("RL", "measured"),
    ("AS", "measured"),
    ("PLRG", "generated"),
    ("TS", "generated"),
    ("Tiers", "generated"),
    ("Waxman", "generated"),
    ("Mesh", "canonical"),
    ("Random", "canonical"),
    ("Tree", "canonical"),
)
