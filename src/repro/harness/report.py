"""One-call report generation — resumable, with runtime provenance.

``generate_report`` re-runs the paper's headline analyses (Figure 1
table, Section 4.4 signatures, Section 5.1 hierarchy classes, Figure 5
correlations) on any set of topologies and renders a markdown report —
the programmatic counterpart of EXPERIMENTS.md, usable on a user's own
graphs.

Reports over many topologies checkpoint like sweeps do: with a
``journal`` every finished topology (and, through the engine, every
finished metric center) is journaled, so a crashed or interrupted
``repro report`` rerun with ``--resume`` recomputes nothing already
done.  Under a ``runtime`` policy, topologies whose metrics had to drop
centers get an explicit per-metric status line in the report instead of
silently averaging over fewer centers.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Union

from repro.analysis import PAPER_SIGNATURES, signature
from repro.engine import MetricEngine, MetricRequest, graph_fingerprint
from repro.graph.core import Graph
from repro.harness.tables import format_table
from repro.hierarchy import (
    classify_hierarchy,
    link_value_degree_correlation,
    link_values,
    normalized_rank_distribution,
)
from repro.routing.policy import Relationships
from repro.runtime import Journal, RuntimePolicy, as_journal


@dataclasses.dataclass
class ReportInput:
    """One topology to analyse."""

    name: str
    graph: Graph
    relationships: Optional[Relationships] = None
    # Link values cost O(n^2); skip them for big graphs unless forced.
    link_value_graph: Optional[Graph] = None


@dataclasses.dataclass
class TopologyReport:
    """Computed results for one topology."""

    name: str
    nodes: int
    edges: int
    average_degree: float
    signature: str
    hierarchy_class: Optional[str] = None
    correlation: Optional[float] = None
    #: Per-metric runtime status ("ok", or e.g. "resilience: 5 ok, 1
    #: failed") — non-"ok" means the signature rests on partial series.
    status: str = "ok"
    #: True when restored from a resume journal instead of recomputed.
    resumed: bool = False


MAX_LINK_VALUE_NODES = 700


def analyse_topology(
    item: ReportInput,
    num_centers: int = 8,
    max_ball_size: int = 700,
    seed: int = 1,
    engine: Optional[MetricEngine] = None,
    journal: Optional[Journal] = None,
    resume: bool = False,
) -> TopologyReport:
    """Run the three basic metrics (and, when feasible, link values).

    The metrics go through one shared :class:`MetricEngine` pass, so
    resilience and distortion (same centers, same ball cap) grow each
    ball subgraph once instead of once per metric.  With ``journal``,
    the finished report is checkpointed (keyed by the graph's content
    fingerprint, so renamed or edited inputs never resume stale rows);
    with ``resume`` a journaled report is returned without recomputing.
    """
    graph = item.graph
    if engine is None:
        engine = MetricEngine(workers=0, use_cache=False)
    key = None
    if journal is not None:
        key = (
            f"reportrow|{item.name}|{graph_fingerprint(graph)[:16]}"
            f"|centers={num_centers}|ball={max_ball_size}|seed={seed}"
        )
        if resume:
            stored = journal.get(key)
            if stored is not None:
                report = TopologyReport(**stored)
                report.resumed = True
                return report
    series = engine.compute(
        graph,
        [
            MetricRequest(
                "expansion", num_centers=max(16, num_centers), seed=seed
            ),
            MetricRequest(
                "resilience",
                num_centers=num_centers,
                max_ball_size=max_ball_size,
                seed=seed,
            ),
            MetricRequest(
                "distortion",
                num_centers=num_centers,
                max_ball_size=max_ball_size,
                seed=seed,
            ),
        ],
    )
    e = series["expansion"]
    r = series["resilience"]
    d = series["distortion"]
    report = TopologyReport(
        name=item.name,
        nodes=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        average_degree=graph.average_degree(),
        signature=signature(e, r, d, graph.number_of_nodes()),
    )
    run = engine.last_run
    if not run.ok:
        report.status = "; ".join(
            f"{name}: {run.metrics[name].summary()}"
            for name in run.degraded_metrics
        )
    lv_graph = item.link_value_graph or graph
    if lv_graph.number_of_nodes() <= MAX_LINK_VALUE_NODES:
        values = link_values(lv_graph, seed=seed)
        dist = normalized_rank_distribution(values, lv_graph.number_of_nodes())
        report.hierarchy_class = classify_hierarchy(dist)
        report.correlation = link_value_degree_correlation(lv_graph, values)
    if journal is not None:
        payload = dataclasses.asdict(report)
        payload["resumed"] = False
        journal.append(key, payload)
    return report


def generate_report(
    items: Sequence[ReportInput],
    num_centers: int = 8,
    max_ball_size: int = 700,
    seed: int = 1,
    workers: int = 0,
    use_cache: bool = False,
    cache_dir: Optional[str] = None,
    runtime: Optional[RuntimePolicy] = None,
    journal: Optional[Union[Journal, str]] = None,
    resume: bool = False,
) -> str:
    """Markdown report over a set of topologies.

    Includes the Figure-1-style inventory, the Section 4.4 signature
    table (with the paper's expectation where the name is known), and
    the Section 5 hierarchy columns where link values were feasible.

    ``workers`` fans ball centers across that many processes per
    topology; ``use_cache`` reuses finished series from ``cache_dir``
    (``.repro-cache/`` by default) across calls.  ``runtime`` supervises
    the metric passes (deadlines/retries/degradation; see
    ``docs/ROBUSTNESS.md``); ``journal``+``resume`` checkpoint per
    topology and per center so an interrupted report picks up where it
    died.  A path ``journal`` is owned here (truncated unless
    ``resume``); a :class:`Journal` instance is used as-is.
    """
    owns_journal = journal is not None and not isinstance(journal, Journal)
    journal = as_journal(journal)
    if owns_journal and not resume:
        journal.reset()
    engine = MetricEngine(
        workers=workers,
        use_cache=use_cache,
        cache_dir=cache_dir,
        runtime=runtime,
        journal=journal,
    )
    reports = [
        analyse_topology(
            item, num_centers, max_ball_size, seed,
            engine=engine, journal=journal, resume=resume,
        )
        for item in items
    ]
    lines: List[str] = []
    lines.append("# Topology comparison report")
    lines.append("")
    lines.append(
        "Metrics from *Network Topology Generators: Degree-Based vs. "
        "Structural* (SIGCOMM 2002): expansion/resilience/distortion "
        "signature (H=High, L=Low) and Section 5 hierarchy."
    )
    lines.append("")
    rows = []
    for rep in reports:
        rows.append(
            [
                rep.name,
                rep.nodes,
                rep.edges,
                f"{rep.average_degree:.2f}",
                rep.signature,
                PAPER_SIGNATURES.get(rep.name, "-"),
                rep.hierarchy_class or "-",
                f"{rep.correlation:+.2f}" if rep.correlation is not None else "-",
            ]
        )
    lines.append("```")
    lines.append(
        format_table(
            [
                "topology",
                "nodes",
                "edges",
                "avg deg",
                "signature",
                "paper",
                "hierarchy",
                "value/deg corr",
            ],
            rows,
        )
    )
    lines.append("```")
    lines.append("")
    internet_like = [rep.name for rep in reports if rep.signature == "HHL"]
    if internet_like:
        lines.append(
            f"Internet-like (HHL) topologies: {', '.join(internet_like)}."
        )
    degraded = [rep for rep in reports if rep.status != "ok"]
    if degraded:
        lines.append("")
        lines.append("## Runtime status")
        lines.append("")
        lines.append(
            "The following topologies completed with partial series "
            "(failed centers were excluded from the averages; see "
            "docs/ROBUSTNESS.md):"
        )
        lines.append("")
        for rep in degraded:
            lines.append(f"- **{rep.name}**: {rep.status}")
    resumed = [rep.name for rep in reports if rep.resumed]
    if resumed:
        lines.append("")
        lines.append(
            f"Restored from checkpoint journal (not recomputed): "
            f"{', '.join(resumed)}."
        )
    lines.append("")
    return "\n".join(lines)
