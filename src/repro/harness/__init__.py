"""Benchmark harness: the Figure-1 topology registry, parameter sweeps,
and table/series formatting."""

from repro.harness.registry import (
    CATEGORY_CANONICAL,
    CATEGORY_DEGREE_BASED,
    CATEGORY_GENERATED,
    CATEGORY_MEASURED,
    FIGURE1_ROWS,
    TopologyEntry,
    topology,
    topology_names,
)
from repro.harness.export import (
    read_series_csv,
    read_series_json,
    write_series_csv,
    write_series_json,
)
from repro.harness.plots import ascii_plot
from repro.harness.tables import format_series, format_table
from repro.harness.sweep import (
    SWEEP_GRIDS,
    SweepRow,
    SweepRun,
    render_sweep_table,
    rows_from_journal,
    run_sweep,
    run_sweep_row,
    sweep,
    sweep_row_key,
    sweep_row_request,
    sweep_shard_key,
    sweep_tasks,
)
from repro.harness.report import (
    ReportInput,
    TopologyReport,
    analyse_topology,
    generate_report,
)

__all__ = [
    "CATEGORY_CANONICAL",
    "CATEGORY_DEGREE_BASED",
    "CATEGORY_GENERATED",
    "CATEGORY_MEASURED",
    "FIGURE1_ROWS",
    "TopologyEntry",
    "topology",
    "topology_names",
    "ascii_plot",
    "read_series_csv",
    "read_series_json",
    "write_series_csv",
    "write_series_json",
    "format_series",
    "format_table",
    "SWEEP_GRIDS",
    "SweepRow",
    "SweepRun",
    "render_sweep_table",
    "rows_from_journal",
    "run_sweep",
    "run_sweep_row",
    "sweep",
    "sweep_row_key",
    "sweep_row_request",
    "sweep_shard_key",
    "sweep_tasks",
    "ReportInput",
    "TopologyReport",
    "analyse_topology",
    "generate_report",
]
