"""ASCII table and series formatting for the benchmark harness.

The benches print "the same rows/series the paper reports" — these
helpers keep that output consistent and readable in pytest logs.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Monospace table with column auto-widths."""
    rendered_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    label: str,
    points: Sequence[Tuple[float, float]],
    x_name: str = "x",
    y_name: str = "y",
    max_points: int = 14,
) -> str:
    """One metric series as a compact two-row block.

    Long series are decimated evenly to ``max_points`` so bench output
    stays scannable.
    """
    if len(points) > max_points:
        step = (len(points) - 1) / (max_points - 1)
        indices = sorted({round(i * step) for i in range(max_points)})
        points = [points[i] for i in indices]
    xs = "  ".join(_fmt(x) for x, _ in points)
    ys = "  ".join(_fmt(y) for _, y in points)
    return f"{label}\n  {x_name}: {xs}\n  {y_name}: {ys}"


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:.3g}"
    if abs(value) >= 10:
        return f"{value:.1f}"
    if abs(value) >= 0.01:
        return f"{value:.3f}"
    return f"{value:.2e}"
