"""Automatic reproductions of the paper's qualitative judgements: the
Low/High metric classifiers and the Section 4.4 signature table."""

from repro.analysis.classify import (
    HIGH,
    LOW,
    PAPER_SIGNATURES,
    SIGNATURE_HINTS,
    ClassifierThresholds,
    classify_distortion,
    classify_expansion,
    classify_resilience,
    signature,
    signature_requests,
)

__all__ = [
    "HIGH",
    "LOW",
    "PAPER_SIGNATURES",
    "SIGNATURE_HINTS",
    "ClassifierThresholds",
    "classify_distortion",
    "classify_expansion",
    "classify_resilience",
    "signature",
    "signature_requests",
]
