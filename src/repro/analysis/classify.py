"""Automatic Low/High classification of the three basic metrics
(Section 4's qualitative judgements, made reproducible).

The paper classifies by eye: "we have made qualitative (and therefore
somewhat subjective) comparisons".  To make the reproduction testable we
encode each judgement as a calibrated rule, documented with the paper's
own calibration anchors:

* **Expansion** — exponential vs slower-than-exponential growth.  For a
  graph that expands exponentially the radius needed to reach half the
  nodes is O(log N) (tree, random: E(h) ∝ k^h/N); for a mesh it is
  O(sqrt N) (E(h) ∝ h²/N).  We classify High when the half-reach radius
  is below ``expansion_ratio`` × log2(N).
* **Resilience** — R(n) bounded by a constant (tree: R = 1; TS "has low
  R(n), similar to Tree") versus growing with n (mesh ∝ sqrt n, random
  ∝ kn).  We classify Low when R stays below ``resilience_ceiling`` on
  all balls with at least ``resilience_min_n`` nodes.
* **Distortion** — tree-like (D ≈ 1–2, flat) versus mesh/random-like
  (D ∝ log n, exceeding 2.5 by n ≈ 500).  We classify High when the
  average D over the larger balls exceeds ``distortion_threshold``.

Each rule is exercised against all five canonical anchor networks in the
test suite (the paper's own sanity check: the canonical graphs "help
calibrate, and explain, our results").
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence, Tuple

from repro.metrics.expansion import ExpansionPoint, radius_to_reach

SeriesPoint = Tuple[float, float]

LOW = "L"
HIGH = "H"


@dataclasses.dataclass(frozen=True)
class ClassifierThresholds:
    """Calibration constants for the L/H classifiers."""

    expansion_ratio: float = 1.6
    resilience_ceiling: float = 9.0
    resilience_min_n: int = 80
    # Calibrated to the canonical min-index-parent BFS trees (which find
    # slightly better trees than the legacy set-order heuristic): the
    # high group bottoms out at Random ≈ 2.33, the low group tops out at
    # Tiers ≈ 2.07.
    distortion_threshold: float = 2.2
    distortion_min_n: int = 150


def classify_expansion(
    series: Sequence[ExpansionPoint],
    num_nodes: int,
    thresholds: ClassifierThresholds = ClassifierThresholds(),
) -> str:
    """High for exponential expansion, Low for mesh-like (or slower)."""
    if not series or num_nodes < 4:
        return LOW
    half_reach = radius_to_reach(series, 0.5)
    budget = thresholds.expansion_ratio * math.log2(num_nodes)
    return HIGH if half_reach <= budget else LOW


def classify_resilience(
    series: Sequence[SeriesPoint],
    thresholds: ClassifierThresholds = ClassifierThresholds(),
) -> str:
    """Low when R(n) stays flat near the tree's R = 1, else High."""
    eligible = [v for n, v in series if n >= thresholds.resilience_min_n]
    if not eligible:
        # Only tiny balls available; fall back to the full series.
        eligible = [v for _n, v in series]
    if not eligible:
        return LOW
    return LOW if max(eligible) < thresholds.resilience_ceiling else HIGH


def classify_distortion(
    series: Sequence[SeriesPoint],
    thresholds: ClassifierThresholds = ClassifierThresholds(),
) -> str:
    """High for mesh/random-like distortion growth, Low for tree-like."""
    eligible = [v for n, v in series if n >= thresholds.distortion_min_n]
    if not eligible:
        eligible = [v for _n, v in series[-3:]]
    if not eligible:
        return LOW
    average = sum(eligible) / len(eligible)
    return HIGH if average >= thresholds.distortion_threshold else LOW


def signature(
    expansion_series: Sequence[ExpansionPoint],
    resilience_series: Sequence[SeriesPoint],
    distortion_series: Sequence[SeriesPoint],
    num_nodes: int,
    thresholds: ClassifierThresholds = ClassifierThresholds(),
) -> str:
    """The three-letter Low/High signature, e.g. "HHL" for AS/RL/PLRG."""
    return (
        classify_expansion(expansion_series, num_nodes, thresholds)
        + classify_resilience(resilience_series, thresholds)
        + classify_distortion(distortion_series, thresholds)
    )


# The Section 4.4 expectations, used by tests and the signature bench.
PAPER_SIGNATURES = {
    "Mesh": "LHH",
    "Random": "HHH",
    "Tree": "HLL",
    "Complete": "HHL",
    "Linear": "LLL",
    "AS": "HHL",
    "RL": "HHL",
    "PLRG": "HHL",
    "Tiers": "LHL",
    "TS": "HLL",
    "Waxman": "HHH",
}

# One-line readings of the common signatures, shown by the CLI and the
# service after classifying a graph.
SIGNATURE_HINTS = {
    "HHL": "Internet-like (matches AS/RL/PLRG in the paper)",
    "HLL": "tree-like (matches Tree/Transit-Stub)",
    "LHL": "Tiers-like",
    "HHH": "random-like (matches Random/Waxman)",
    "LHH": "mesh-like",
    "LLL": "chain-like",
}


def signature_requests(centers: int, max_ball: int, seed):
    """The engine requests behind one L/H signature classification.

    ``repro signature`` and the service's ``signature`` op both build
    their shared :class:`~repro.engine.MetricEngine` pass through this
    function, so a daemon answer is bitwise-identical to the CLI run:
    same centers floor for expansion, same ball cap, same seed routing.
    """
    from repro.engine import MetricRequest  # local: keeps import acyclic

    return [
        MetricRequest("expansion", num_centers=max(centers, 16), seed=seed),
        MetricRequest(
            "resilience",
            num_centers=centers,
            max_ball_size=max_ball,
            seed=seed,
        ),
        MetricRequest(
            "distortion",
            num_centers=centers,
            max_ball_size=max_ball,
            seed=seed,
        ),
    ]
