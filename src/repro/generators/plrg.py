"""The Power-Law Random Graph generator (Aiello, Chung & Lu), Section 3.1.2.

"Given a target number of nodes N, and an exponent beta, it first assigns
degrees to N nodes drawn from a power-law distribution with exponent beta
... the PLRG generator makes v_i copies of each node i.  Links are then
assigned by randomly picking two node copies and assigning a link between
them, until no more copies remain."

Self-loops and duplicate links are dropped and the largest connected
component is returned, exactly as in the paper.

This is the headline streaming generator: with a
:class:`~repro.generators.builder.GraphBuilder` sink it never touches the
dict-of-sets build layer (the wiring makes no membership queries), so
million-node instances freeze straight from the stub permutation into CSR
arrays — the scale-smoke bench builds one to prove it.
"""

from __future__ import annotations

from typing import Optional

from repro.generators.base import Seed, giant_component, make_rng
from repro.generators.builder import EdgeSink, GraphSink
from repro.generators.degree_sequence import _emit_plrg, power_law_degrees
from repro.graph.core import Graph


def plrg(
    n: int = 2000,
    exponent: float = 2.246,
    seed: Seed = None,
    max_degree: Optional[int] = None,
    sink: Optional[EdgeSink] = None,
):
    """Generate a PLRG and return its giant component.

    Parameters
    ----------
    n:
        Target node count before taking the giant component.  The paper's
        headline instance is ``n=9230`` at ``exponent=2.246`` (9230 nodes,
        average degree 4.46); smaller instances have the same qualitative
        metrics, which is the point of the ball-growing methodology.
    exponent:
        Power-law exponent beta (Appendix C explores 2.246–2.550).
    seed:
        Reproducibility seed.
    max_degree:
        Optional cap on sampled degrees; defaults to ``n - 1``.
    sink:
        Optional edge sink.  Omitted: the mutable ``Graph`` is returned,
        exactly as before.  Given: the same wiring streams into the sink
        and ``sink.finalize(component="giant")`` is returned (a frozen
        ``CSRGraph`` for a ``GraphBuilder``).
    """
    rng = make_rng(seed)
    degrees = power_law_degrees(n, exponent, seed=rng, max_degree=max_degree)
    name = f"PLRG(n={n},beta={exponent})"
    dest = sink if sink is not None else GraphSink()
    _emit_plrg(dest, degrees, rng)
    del degrees
    return dest.finalize(name=name, component="giant")
