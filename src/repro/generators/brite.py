"""The BRITE generator, version 1.0 behaviour (Medina, Lakhina, Matta &
Byers), as used in Section 4.4 and Appendix D.1.

BRITE places nodes on a plane — uniformly at random, or with a
*heavy-tailed* density (the option the paper used: "We used a
heavy-tailed option when generating a network in our study") — and then
grows the graph incrementally, each new node connecting ``m`` links to
already-placed nodes with Barabási–Albert preferential attachment,
optionally modulated by a Waxman distance factor (the geographic-bias
feature the paper "did not explore"; off by default here too).

Like plain B-A, the growth loop samples from the repeated-endpoints pool
and dedupes targets in a local set, so it streams natively: no membership
queries ever reach the sink.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.generators.base import Seed, make_rng, require
from repro.generators.builder import EdgeSink, GraphSink

Placement = str  # "random" | "heavy_tailed"


def _place_nodes(
    n: int, placement: Placement, plane_side: int, rng
) -> List[Tuple[float, float]]:
    """BRITE node placement.

    Heavy-tailed placement divides the plane into cells and assigns each
    cell a number of nodes drawn from a bounded Pareto, then scatters the
    nodes uniformly within their cell — producing the clustered layouts
    BRITE's HT option is known for.
    """
    if placement == "random":
        return [(rng.random() * plane_side, rng.random() * plane_side) for _ in range(n)]
    require(
        placement == "heavy_tailed",
        "placement must be 'random' or 'heavy_tailed'",
    )

    cells_per_side = max(1, int(math.sqrt(n / 4)))
    cell = plane_side / cells_per_side
    # Bounded Pareto weights per cell, then proportional node allocation.
    alpha = 1.2
    weights = []
    for _ in range(cells_per_side * cells_per_side):
        u = rng.random()
        weights.append((1.0 - u) ** (-1.0 / alpha))  # Pareto(alpha), x_min=1
    total = sum(weights)
    positions: List[Tuple[float, float]] = []
    for idx, w in enumerate(weights):
        count = int(round(n * w / total))
        cx = (idx % cells_per_side) * cell
        cy = (idx // cells_per_side) * cell
        for _ in range(count):
            positions.append((cx + rng.random() * cell, cy + rng.random() * cell))
    # Rounding can over/under-shoot; trim or pad uniformly.
    while len(positions) > n:
        positions.pop()
    while len(positions) < n:
        positions.append((rng.random() * plane_side, rng.random() * plane_side))
    return positions


def _emit_brite(
    dest: EdgeSink,
    n: int,
    m: int,
    positions: List[Tuple[float, float]],
    waxman_alpha: float,
    waxman_beta: float,
    diagonal: float,
    rng,
) -> None:
    pool: List[int] = []
    for v in range(1, m + 1):
        dest.add_edge(0, v)
        pool.extend((0, v))

    use_waxman = waxman_alpha > 0.0
    for new in range(m + 1, n):
        targets = set()
        guard = 0
        while len(targets) < m and guard < 100000:
            guard += 1
            candidate = pool[rng.randrange(len(pool))]
            if candidate in targets:
                continue
            if use_waxman:
                dx = positions[new][0] - positions[candidate][0]
                dy = positions[new][1] - positions[candidate][1]
                d = math.sqrt(dx * dx + dy * dy)
                w = waxman_alpha * math.exp(-d / (waxman_beta * diagonal))
                if rng.random() > w:
                    continue
            targets.add(candidate)
        for t in targets:
            dest.add_edge(new, t)
            pool.extend((new, t))


def brite(
    n: int = 2000,
    m: int = 2,
    placement: Placement = "heavy_tailed",
    waxman_alpha: float = 0.0,
    waxman_beta: float = 0.2,
    plane_side: int = 1000,
    seed: Seed = None,
    sink: Optional[EdgeSink] = None,
):
    """Generate a BRITE graph; returns the giant component.

    Parameters
    ----------
    n, m:
        Node count and links per joining node.
    placement:
        ``"heavy_tailed"`` (the paper's choice) or ``"random"``.
    waxman_alpha:
        If > 0, modulate preferential attachment by the Waxman factor
        ``alpha * exp(-d / (beta * L))`` (BRITE's geographic bias; the
        paper left this off, so 0.0 disables it by default).
    waxman_beta, plane_side:
        Waxman shape parameter and plane size.
    sink:
        Optional edge sink (see :mod:`repro.generators.builder`).
    """
    require(m >= 1, "m must be >= 1")
    require(n > m, "n must exceed m")
    rng = make_rng(seed)
    positions = _place_nodes(n, placement, plane_side, rng)
    diagonal = plane_side * math.sqrt(2.0)

    name = f"Brite(n={n},m={m},{placement})"
    dest = sink if sink is not None else GraphSink()
    _emit_brite(
        dest, n, m, positions, waxman_alpha, waxman_beta, diagonal, rng
    )
    return dest.finalize(name=name, component="giant")
