"""The Tiers generator (Doar, GLOBECOM 1996), Section 3.1.2.

"First, it creates a number of top-level networks [WANs], to each of
which are attached several intermediate tier networks [MANs].  Similarly,
several LANs are randomly attached to each intermediate tier network.
Within each tier (except the LAN), Tiers uses a minimum spanning tree to
connect all the nodes, then adds additional links in order of increasing
inter-node Euclidean distance.  LAN nodes are connected using a star
topology.  Additional inter-tier links are added randomly based upon a
specified parameter."

Parameters follow the Appendix C ordering (the implementation, like the
original, supports exactly one WAN).  The paper's headline instance is
5000 nodes with average degree 2.83.

The redundancy pass checks node degrees as it links nearest neighbours,
so on the streaming path the sink runs in exact mode (incremental degree
array); no dict-of-sets graph is ever built.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

from repro.generators.base import Seed, make_rng, require, restrict_roles
from repro.generators.builder import EdgeSink, GraphSink


@dataclasses.dataclass(frozen=True)
class TiersParams:
    """Appendix C parameter vector for Tiers.

    ``redundancy_*`` is the intra-network redundancy: each node is linked
    to its ``R`` nearest neighbours (``R=1`` leaves the pure MST).
    ``man_wan_links`` / ``lan_man_links`` are the internetwork
    redundancies: how many links tie each MAN into the WAN and each LAN
    into its MAN.
    """

    wans: int = 1
    mans_per_wan: int = 50
    lans_per_man: int = 10
    wan_nodes: int = 500
    man_nodes: int = 40
    lan_nodes: int = 5
    redundancy_wan: int = 4
    redundancy_man: int = 3
    redundancy_lan: int = 1
    man_wan_links: int = 3
    lan_man_links: int = 1

    def total_nodes(self) -> int:
        mans = self.wans * self.mans_per_wan
        lans = mans * self.lans_per_man
        return (
            self.wans * self.wan_nodes
            + mans * self.man_nodes
            + lans * self.lan_nodes
        )


def _euclidean_mst(points: List[Tuple[float, float]]) -> List[Tuple[int, int]]:
    """Prim's algorithm, O(n^2) — fine at Tiers' per-network sizes."""
    n = len(points)
    if n <= 1:
        return []
    in_tree = [False] * n
    best_dist = [math.inf] * n
    best_edge = [-1] * n
    in_tree[0] = True
    for j in range(1, n):
        dx = points[0][0] - points[j][0]
        dy = points[0][1] - points[j][1]
        best_dist[j] = dx * dx + dy * dy
        best_edge[j] = 0
    edges: List[Tuple[int, int]] = []
    for _ in range(n - 1):
        u = min(
            (j for j in range(n) if not in_tree[j]), key=lambda j: best_dist[j]
        )
        edges.append((best_edge[u], u))
        in_tree[u] = True
        for j in range(n):
            if not in_tree[j]:
                dx = points[u][0] - points[j][0]
                dy = points[u][1] - points[j][1]
                d = dx * dx + dy * dy
                if d < best_dist[j]:
                    best_dist[j] = d
                    best_edge[j] = u
    return edges


def _build_tier_network(
    node_ids: List[int], redundancy: int, rng, dest: EdgeSink
) -> List[Tuple[float, float]]:
    """Place a tier's nodes on a plane, MST them, add redundancy links.

    Redundancy R: each node is connected to its R nearest neighbours (the
    MST edge counts toward that budget), realising "adds additional links
    in order of increasing inter-node Euclidean distance".  Returns the
    node positions so callers can make *geometric* inter-tier
    attachments (random attachment would create long-range shortcuts the
    real Tiers does not have, inflating expansion).
    """
    n = len(node_ids)
    points = [(rng.random(), rng.random()) for _ in range(n)]
    for a, b in _euclidean_mst(points):
        dest.add_edge(node_ids[a], node_ids[b])
    if redundancy > 1 and n > 2:
        for i in range(n):
            # Sort other nodes by distance; link the closest until this
            # node has `redundancy` links within its tier.
            by_distance = sorted(
                (j for j in range(n) if j != i),
                key=lambda j: (points[i][0] - points[j][0]) ** 2
                + (points[i][1] - points[j][1]) ** 2,
            )
            for j in by_distance:
                if dest.degree(node_ids[i]) >= redundancy:
                    break
                dest.add_edge(node_ids[i], node_ids[j])
    return points


def _nearest_indices(
    points: List[Tuple[float, float]], anchor: Tuple[float, float], count: int
) -> List[int]:
    """Indices of the ``count`` points nearest to ``anchor``."""
    by_distance = sorted(
        range(len(points)),
        key=lambda j: (anchor[0] - points[j][0]) ** 2
        + (anchor[1] - points[j][1]) ** 2,
    )
    return by_distance[:count]


def _emit_tiers(dest: EdgeSink, params: TiersParams, rng) -> Dict[int, str]:
    roles: Dict[int, str] = {}
    next_id = 0

    # --- WAN --------------------------------------------------------------
    wan_ids = list(range(next_id, next_id + params.wan_nodes))
    next_id += params.wan_nodes
    for node in wan_ids:
        dest.add_node(node)
        roles[node] = "wan"
    wan_points = _build_tier_network(wan_ids, params.redundancy_wan, rng, dest)

    # --- MANs ---------------------------------------------------------------
    man_networks: List[List[int]] = []
    for _ in range(params.mans_per_wan):
        ids = list(range(next_id, next_id + params.man_nodes))
        next_id += params.man_nodes
        for node in ids:
            dest.add_node(node)
            roles[node] = "man"
        _build_tier_network(ids, params.redundancy_man, rng, dest)
        # Internetwork links into the WAN: the MAN sits at a geographic
        # anchor and homes onto the *nearest* WAN nodes.
        anchor = (rng.random(), rng.random())
        links = max(1, params.man_wan_links)
        for idx in _nearest_indices(wan_points, anchor, links):
            dest.add_edge(ids[rng.randrange(len(ids))], wan_ids[idx])
        man_networks.append(ids)

    # --- LANs ---------------------------------------------------------------
    for man_ids in man_networks:
        for _ in range(params.lans_per_man):
            ids = list(range(next_id, next_id + params.lan_nodes))
            next_id += params.lan_nodes
            for node in ids:
                dest.add_node(node)
                roles[node] = "lan"
            # Star topology around the first LAN node (the hub).
            hub = ids[0]
            for node in ids[1:]:
                dest.add_edge(hub, node)
            # Internetwork links into the MAN, from the hub.
            for _ in range(max(1, params.lan_man_links)):
                dest.add_edge(hub, man_ids[rng.randrange(len(man_ids))])
    return roles


def tiers(
    params: TiersParams = TiersParams(),
    seed: Seed = None,
    sink: Optional[EdgeSink] = None,
):
    """Generate a Tiers topology (connected by construction)."""
    graph, _ = tiers_with_roles(params, seed, sink=sink)
    return graph


def tiers_with_roles(
    params: TiersParams = TiersParams(),
    seed: Seed = None,
    sink: Optional[EdgeSink] = None,
):
    """Like :func:`tiers`, also returning node -> role ("wan" | "man" |
    "lan"), used by hierarchy sanity checks ("in Tiers [the highest
    valued links] are in the WAN")."""
    require(
        params.wans == 1,
        "the number of WANs is limited to 1 in the current implementation",
    )  # same restriction as the original Tiers, per Appendix C
    require(
        min(
            params.mans_per_wan,
            params.lans_per_man,
            params.wan_nodes,
            params.man_nodes,
            params.lan_nodes,
        )
        >= 1,
        "all network sizes/counts must be >= 1",
    )
    rng = make_rng(seed)
    dest = sink if sink is not None else GraphSink()
    roles = _emit_tiers(dest, params, rng)
    graph = dest.finalize(name="Tiers", component="all")
    return graph, restrict_roles(graph, roles)
