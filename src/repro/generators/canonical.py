"""Canonical networks (Section 3.1.3).

The paper calibrates its metrics on deliberately simple graphs: the k-ary
Tree, the rectangular Mesh, and the Erdős–Rényi Random graph, plus the
complete graph and the linear chain used in the Section 3.2.1 summary
table.  Each has a known Low/High signature for expansion, resilience and
distortion, which the test suite asserts.
"""

from __future__ import annotations

from typing import Optional

from repro.generators.base import Seed, giant_component, make_rng
from repro.graph.core import Graph


def kary_tree(branching: int = 3, depth: int = 6) -> Graph:
    """Complete k-ary tree; the paper's Tree is ``k=3, D=6`` (1093 nodes).

    Node 0 is the root; children are numbered breadth-first.
    """
    if branching < 1:
        raise ValueError("branching must be >= 1")
    if depth < 0:
        raise ValueError("depth must be >= 0")
    graph = Graph(name=f"Tree(k={branching},D={depth})")
    graph.add_node(0)
    next_id = 1
    frontier = [0]
    for _ in range(depth):
        new_frontier = []
        for node in frontier:
            for _ in range(branching):
                graph.add_edge(node, next_id)
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return graph


def mesh(rows: int = 30, cols: Optional[int] = None) -> Graph:
    """Rectangular grid; the paper's Mesh is 30x30 (900 nodes).

    Node ``(r, c)`` is labeled ``r * cols + c``.
    """
    if cols is None:
        cols = rows
    if rows < 1 or cols < 1:
        raise ValueError("mesh dimensions must be >= 1")
    graph = Graph(name=f"Mesh({rows}x{cols})")
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            graph.add_node(node)
            if r + 1 < rows:
                graph.add_edge(node, (r + 1) * cols + c)
            if c + 1 < cols:
                graph.add_edge(node, r * cols + c + 1)
    return graph


def linear_chain(n: int) -> Graph:
    """Path graph on ``n`` nodes (the Section 3.2.1 'Linear' network)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    graph = Graph(name=f"Linear({n})")
    graph.add_node(0)
    for i in range(1, n):
        graph.add_edge(i - 1, i)
    return graph


def complete_graph(n: int) -> Graph:
    """Complete graph on ``n`` nodes (the Section 3.2.1 'Complete')."""
    if n < 1:
        raise ValueError("n must be >= 1")
    graph = Graph(name=f"Complete({n})")
    graph.add_node(0)
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v)
    return graph


def ring(n: int) -> Graph:
    """Cycle graph on ``n`` nodes."""
    if n < 3:
        raise ValueError("a ring needs n >= 3")
    graph = Graph(name=f"Ring({n})")
    for i in range(n):
        graph.add_edge(i, (i + 1) % n)
    return graph


def erdos_renyi(
    n: int, p: float, seed: Seed = None, connected_only: bool = True
) -> Graph:
    """Erdős–Rényi G(n, p); the paper's Random is ``n=5018, p=0.0008``.

    Uses the Batagelj–Brandes geometric-skip construction, so the cost is
    proportional to the number of edges rather than n².  With
    ``connected_only`` (the default, matching the paper) the largest
    connected component is returned.
    """
    import math

    if n < 1:
        raise ValueError("n must be >= 1")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = make_rng(seed)
    graph = Graph(name=f"Random(n={n},p={p})")
    graph.add_nodes_from(range(n))
    if p > 0.0:
        log_1p = math.log(1.0 - p) if p < 1.0 else None
        v, w = 1, -1
        while v < n:
            if log_1p is None:
                w += 1
            else:
                w += 1 + int(math.log(1.0 - rng.random()) / log_1p)
            while w >= v and v < n:
                w -= v
                v += 1
            if v < n:
                graph.add_edge(v, w)
    return giant_component(graph) if connected_only else graph


def erdos_renyi_gnm(
    n: int, m: int, seed: Seed = None, connected_only: bool = True
) -> Graph:
    """G(n, m): exactly ``m`` distinct random edges (useful in tests)."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"m={m} exceeds the {max_edges} possible edges")
    rng = make_rng(seed)
    graph = Graph(name=f"Random(n={n},m={m})")
    graph.add_nodes_from(range(n))
    while graph.number_of_edges() < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        graph.add_edge(u, v)
    return giant_component(graph) if connected_only else graph
