"""Canonical networks (Section 3.1.3).

The paper calibrates its metrics on deliberately simple graphs: the k-ary
Tree, the rectangular Mesh, and the Erdős–Rényi Random graph, plus the
complete graph and the linear chain used in the Section 3.2.1 summary
table.  Each has a known Low/High signature for expansion, resilience and
distortion, which the test suite asserts.

Every constructor takes an optional ``sink``; none of them makes
membership queries (``erdos_renyi_gnm`` polls ``number_of_edges``, the
one exception), so they all stream cleanly.
"""

from __future__ import annotations

from typing import Optional

from repro.generators.base import Seed, make_rng, require
from repro.generators.builder import EdgeSink, GraphSink


def kary_tree(
    branching: int = 3, depth: int = 6, sink: Optional[EdgeSink] = None
):
    """Complete k-ary tree; the paper's Tree is ``k=3, D=6`` (1093 nodes).

    Node 0 is the root; children are numbered breadth-first.
    """
    require(branching >= 1, "branching must be >= 1")
    require(depth >= 0, "depth must be >= 0")
    dest = sink if sink is not None else GraphSink()
    dest.add_node(0)
    next_id = 1
    frontier = [0]
    for _ in range(depth):
        new_frontier = []
        for node in frontier:
            for _ in range(branching):
                dest.add_edge(node, next_id)
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return dest.finalize(name=f"Tree(k={branching},D={depth})", component="all")


def mesh(
    rows: int = 30, cols: Optional[int] = None, sink: Optional[EdgeSink] = None
):
    """Rectangular grid; the paper's Mesh is 30x30 (900 nodes).

    Node ``(r, c)`` is labeled ``r * cols + c``.
    """
    if cols is None:
        cols = rows
    require(rows >= 1 and cols >= 1, "mesh dimensions must be >= 1")
    dest = sink if sink is not None else GraphSink()
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            dest.add_node(node)
            if r + 1 < rows:
                dest.add_edge(node, (r + 1) * cols + c)
            if c + 1 < cols:
                dest.add_edge(node, r * cols + c + 1)
    return dest.finalize(name=f"Mesh({rows}x{cols})", component="all")


def linear_chain(n: int, sink: Optional[EdgeSink] = None):
    """Path graph on ``n`` nodes (the Section 3.2.1 'Linear' network)."""
    require(n >= 1, "n must be >= 1")
    dest = sink if sink is not None else GraphSink()
    dest.add_node(0)
    for i in range(1, n):
        dest.add_edge(i - 1, i)
    return dest.finalize(name=f"Linear({n})", component="all")


def complete_graph(n: int, sink: Optional[EdgeSink] = None):
    """Complete graph on ``n`` nodes (the Section 3.2.1 'Complete')."""
    require(n >= 1, "n must be >= 1")
    dest = sink if sink is not None else GraphSink()
    dest.add_node(0)
    for u in range(n):
        for v in range(u + 1, n):
            dest.add_edge(u, v)
    return dest.finalize(name=f"Complete({n})", component="all")


def ring(n: int, sink: Optional[EdgeSink] = None):
    """Cycle graph on ``n`` nodes."""
    require(n >= 3, "a ring needs n >= 3")
    dest = sink if sink is not None else GraphSink()
    for i in range(n):
        dest.add_edge(i, (i + 1) % n)
    return dest.finalize(name=f"Ring({n})", component="all")


def erdos_renyi(
    n: int,
    p: float,
    seed: Seed = None,
    connected_only: bool = True,
    sink: Optional[EdgeSink] = None,
):
    """Erdős–Rényi G(n, p); the paper's Random is ``n=5018, p=0.0008``.

    Uses the Batagelj–Brandes geometric-skip construction, so the cost is
    proportional to the number of edges rather than n².  With
    ``connected_only`` (the default, matching the paper) the largest
    connected component is returned.
    """
    import math

    require(n >= 1, "n must be >= 1")
    require(0.0 <= p <= 1.0, "p must be in [0, 1]")
    rng = make_rng(seed)
    dest = sink if sink is not None else GraphSink()
    dest.add_nodes_from(range(n))
    if p > 0.0:
        log_1p = math.log(1.0 - p) if p < 1.0 else None
        v, w = 1, -1
        while v < n:
            if log_1p is None:
                w += 1
            else:
                w += 1 + int(math.log(1.0 - rng.random()) / log_1p)
            while w >= v and v < n:
                w -= v
                v += 1
            if v < n:
                dest.add_edge(v, w)
    return dest.finalize(
        name=f"Random(n={n},p={p})",
        component="giant" if connected_only else "all",
    )


def erdos_renyi_gnm(
    n: int,
    m: int,
    seed: Seed = None,
    connected_only: bool = True,
    sink: Optional[EdgeSink] = None,
):
    """G(n, m): exactly ``m`` distinct random edges (useful in tests)."""
    max_edges = n * (n - 1) // 2
    require(m <= max_edges, f"m={m} exceeds the {max_edges} possible edges")
    rng = make_rng(seed)
    dest = sink if sink is not None else GraphSink()
    dest.add_nodes_from(range(n))
    while dest.number_of_edges() < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        dest.add_edge(u, v)
    return dest.finalize(
        name=f"Random(n={n},m={m})",
        component="giant" if connected_only else "all",
    )
