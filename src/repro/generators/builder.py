"""Streaming edge sinks: one generator API from toy graphs to
million-node topologies.

Every generator in :mod:`repro.generators` takes an optional ``sink``
argument.  With ``sink=None`` the generator materializes the familiar
mutable dict-of-sets :class:`~repro.graph.core.Graph` exactly as before.
With a sink, the *same* emission core streams ``(u, v)`` edges into the
sink instead, and the generator returns whatever ``sink.finalize()``
produces — for :class:`GraphBuilder`, a frozen
:class:`~repro.graph.csr.CSRGraph` built straight from growing int32
buffers, without the dict form ever existing.

Both paths share one emission core per generator and therefore consume
the RNG identically, so for a given seed the dict build and the streamed
build have the *same edge set* (the ``streaming`` selfcheck family and
``tests/test_streaming_determinism.py`` enforce this for every
registered generator).

Sinks
-----
:class:`GraphSink`
    Thin adapter over a mutable :class:`Graph`; the legacy path.
:class:`GraphBuilder`
    The streaming path: amortized-doubling int32 edge buffers (with
    optional ``np.memmap`` spill for out-of-core builds and an optional
    on-disk :class:`EdgeSpool` tee), incremental degree tracking, and an
    incremental union-find so connectivity queries and giant-component
    extraction never need the dict form.

Membership queries (``has_edge`` / ``degree`` / ``number_of_edges``)
switch a :class:`GraphBuilder` into *exact mode* lazily: a packed-int64
edge set and a degree array are materialized from the buffer on first
use and maintained incrementally afterwards.  Generators that never ask
(PLRG, B-A, Waxman) stay on the cheap append-only path, where duplicate
edges are simply dropped at finalize time.
"""

from __future__ import annotations

import os
import tempfile
from typing import Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.graph.core import Graph
from repro.graph.csr import CSRGraph

__all__ = [
    "EdgeSink",
    "GraphSink",
    "GraphBuilder",
    "EdgeSpool",
    "materialize_into",
]

_KEY_MASK = np.int64((1 << 32) - 1)


def _pack(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Order-free packed edge keys: ``min << 32 | max`` as int64."""
    lo = np.minimum(u, v).astype(np.int64)
    hi = np.maximum(u, v).astype(np.int64)
    return (lo << 32) | hi


def _unpack(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    return (keys >> 32), (keys & _KEY_MASK)


class EdgeSink:
    """The protocol generators emit into.

    Concrete sinks override the bulk methods for speed; the base class
    provides the generic single-edge fallbacks, so a sink only *must*
    implement :meth:`add_node`, :meth:`add_edge`, the query quartet
    (:meth:`has_edge`, :meth:`degree`, :meth:`number_of_nodes`,
    :meth:`number_of_edges`), :meth:`connected` and :meth:`finalize`.

    Node labels are dense non-negative integers, allocated in insertion
    order — the convention every generator in this package already
    follows, and what makes giant-component extraction well defined on
    the streaming path (ties between equal-sized components go to the
    one containing the earliest-allocated node, exactly like
    :func:`repro.graph.traversal.largest_connected_component`).
    """

    def add_node(self, node: int) -> None:
        raise NotImplementedError

    def add_nodes_from(self, nodes: Iterable[int]) -> None:
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: int, v: int) -> None:
        raise NotImplementedError

    def add_edges_from(self, edges: Iterable[Tuple[int, int]]) -> None:
        for u, v in edges:
            self.add_edge(u, v)

    def add_chunk(self, chunk: np.ndarray) -> None:
        """Bulk-add a ``(k, 2)`` integer array of candidate edges."""
        for row in np.asarray(chunk):
            self.add_edge(int(row[0]), int(row[1]))

    def remove_edge(self, u: int, v: int) -> None:
        raise NotImplementedError

    def has_edge(self, u: int, v: int) -> bool:
        raise NotImplementedError

    def degree(self, node: int) -> int:
        raise NotImplementedError

    def number_of_nodes(self) -> int:
        raise NotImplementedError

    def number_of_edges(self) -> int:
        raise NotImplementedError

    def connected(self) -> bool:
        raise NotImplementedError

    def finalize(
        self, name: str = "", component: str = "all"
    ) -> Union[Graph, CSRGraph]:
        """Finish the build.  ``component`` is ``"all"`` or ``"giant"``."""
        raise NotImplementedError


class GraphSink(EdgeSink):
    """The legacy path: an :class:`EdgeSink` over a mutable ``Graph``.

    Generators route their dict build through this adapter so the same
    emission core serves both representations.  Endpoints are coerced to
    plain Python ints (cores may emit numpy scalars), keeping node
    labels — and therefore fingerprints, edge-list files and tests —
    byte-identical to the historical dict builds.
    """

    __slots__ = ("graph",)

    def __init__(self, graph: Optional[Graph] = None):
        self.graph = graph if graph is not None else Graph()

    def add_node(self, node: int) -> None:
        self.graph.add_node(int(node))

    def add_nodes_from(self, nodes: Iterable[int]) -> None:
        if isinstance(nodes, range):
            self.graph.add_nodes_from(nodes)
        else:
            self.graph.add_nodes_from(int(n) for n in nodes)

    def add_edge(self, u: int, v: int) -> None:
        self.graph.add_edge(int(u), int(v))

    def add_chunk(self, chunk: np.ndarray) -> None:
        add = self.graph.add_edge
        for row in np.asarray(chunk):
            add(int(row[0]), int(row[1]))

    def remove_edge(self, u: int, v: int) -> None:
        self.graph.remove_edge(int(u), int(v))

    def has_edge(self, u: int, v: int) -> bool:
        return self.graph.has_edge(int(u), int(v))

    def degree(self, node: int) -> int:
        return self.graph.degree(int(node))

    def number_of_nodes(self) -> int:
        return self.graph.number_of_nodes()

    def number_of_edges(self) -> int:
        return self.graph.number_of_edges()

    def connected(self) -> bool:
        from repro.graph.traversal import is_connected

        return is_connected(self.graph)

    def finalize(self, name: str = "", component: str = "all") -> Graph:
        from repro.generators.base import giant_component

        self.graph.name = name
        if component == "giant":
            return giant_component(self.graph)
        if component != "all":
            raise ValueError(f"unknown component selector {component!r}")
        return self.graph


class EdgeSpool:
    """An append-only on-disk edge list (raw little-endian int32 pairs).

    The durable complement to :class:`GraphBuilder`'s in-memory buffers:
    pass one as the builder's ``spool`` to tee every accepted edge to
    disk, or use it standalone to record a generation run once and
    rebuild CSR graphs from it later with :meth:`replay_into`.
    """

    _DTYPE = np.dtype("<i4")

    def __init__(self, path: str):
        self.path = path
        self._handle = open(path, "ab+")

    def append(self, chunk: np.ndarray) -> None:
        arr = np.ascontiguousarray(np.asarray(chunk), dtype=self._DTYPE)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("spool chunks must have shape (k, 2)")
        self._handle.write(arr.tobytes())

    def __len__(self) -> int:
        """Number of edges recorded so far."""
        self._handle.flush()
        return os.path.getsize(self.path) // (2 * self._DTYPE.itemsize)

    def chunks(self, chunk_edges: int = 1 << 16) -> Iterator[np.ndarray]:
        """Yield the recorded edges back as ``(k, 2)`` int32 arrays."""
        self._handle.flush()
        with open(self.path, "rb") as handle:
            while True:
                raw = handle.read(chunk_edges * 2 * self._DTYPE.itemsize)
                if not raw:
                    return
                flat = np.frombuffer(raw, dtype=self._DTYPE)
                yield flat.reshape(-1, 2)

    def __iter__(self) -> Iterator[np.ndarray]:
        return self.chunks()

    def replay_into(self, sink: EdgeSink) -> EdgeSink:
        for chunk in self.chunks():
            sink.add_chunk(chunk)
        return sink

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "EdgeSpool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _UnionFind:
    """Array-backed union-find with path halving and min-root union.

    Roots are always the smallest node id in their component, which is
    what makes the giant-component tie-break below line up with the
    dict-path :func:`~repro.graph.traversal.connected_components`
    (stable size sort over discovery order == smallest-id-first for the
    dense integer labels generators allocate).
    """

    __slots__ = ("parent",)

    def __init__(self, n: int):
        self.parent = np.arange(n, dtype=np.int32)

    def grow(self, n: int) -> None:
        old = len(self.parent)
        if n > old:
            fresh = np.arange(n, dtype=np.int32)
            fresh[:old] = self.parent
            self.parent = fresh

    def find(self, x: int) -> int:
        p = self.parent
        while p[x] != x:
            p[x] = p[p[x]]
            x = int(p[x])
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if ra < rb:
            self.parent[rb] = ra
        else:
            self.parent[ra] = rb

    def roots(self) -> np.ndarray:
        """Fully-compressed root array (parent[i] == root of i)."""
        p = self.parent
        while True:
            pp = p[p]
            if np.array_equal(pp, p):
                break
            p = pp
        self.parent = p
        return p


class GraphBuilder(EdgeSink):
    """Streaming CSR builder: the sink that never builds the dict form.

    Edges accumulate in an amortized-doubling ``(capacity, 2)`` int32
    buffer; ``finalize`` sorts both edge directions into canonical CSR
    arrays and returns a :class:`CSRGraph`.  Duplicate edges and
    self-loops are tolerated on input (dropped by finalize), matching
    ``Graph.add_edge``'s silent-ignore semantics.

    Parameters
    ----------
    expect_nodes, expect_edges:
        Capacity hints; purely an allocation optimization.
    exact:
        Force exact mode up front (see module docstring) instead of
        activating it lazily on the first membership query.
    spill_dir:
        If set, edge buffers larger than ``spill_threshold`` edges are
        backed by ``np.memmap`` files under this directory instead of
        RAM (out-of-core builds).  Files are removed on ``close()``.
    spill_threshold:
        Buffer capacity (in edges) beyond which spilling kicks in.
    spool:
        Optional :class:`EdgeSpool`; every accepted edge is also
        appended there.
    """

    _MIN_CAPACITY = 1024

    def __init__(
        self,
        expect_nodes: int = 0,
        expect_edges: int = 0,
        exact: bool = False,
        spill_dir: Optional[str] = None,
        spill_threshold: int = 1 << 22,
        spool: Optional[EdgeSpool] = None,
    ):
        capacity = max(self._MIN_CAPACITY, int(expect_edges))
        self._buf = np.empty((capacity, 2), dtype=np.int32)
        self._spill_path: Optional[str] = None
        self._m = 0  # buffer rows in use (unique edges iff exact mode)
        self._n = max(0, int(expect_nodes))
        self.spill_dir = spill_dir
        self.spill_threshold = int(spill_threshold)
        self.spool = spool
        self._edge_set: Optional[set] = None
        self._degrees: Optional[np.ndarray] = None
        if exact:
            self._edge_set = set()
            self._degrees = np.zeros(max(self._n, 1), dtype=np.int64)
        self._removed = False
        # Incremental union-find state: rows [0, _uf_pos) are merged.
        self._uf: Optional[_UnionFind] = None
        self._uf_pos = 0

    # ------------------------------------------------------------------
    # Buffer management
    # ------------------------------------------------------------------
    def _grow_edges(self, need: int) -> None:
        capacity = len(self._buf)
        if need <= capacity:
            return
        while capacity < need:
            capacity *= 2
        if self.spill_dir is not None and capacity >= self.spill_threshold:
            fd, path = tempfile.mkstemp(
                prefix="graphbuilder-", suffix=".i32", dir=self.spill_dir
            )
            os.close(fd)
            fresh = np.memmap(path, dtype=np.int32, mode="w+", shape=(capacity, 2))
            old_spill = self._spill_path
            self._spill_path = path
        else:
            fresh = np.empty((capacity, 2), dtype=np.int32)
            old_spill = None
        fresh[: self._m] = self._buf[: self._m]
        self._buf = fresh
        if old_spill is not None:
            self._drop_spill_file(old_spill)

    def _drop_spill_file(self, path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    def _ensure_node(self, top: int) -> None:
        if top > self._n:
            self._n = top
            if self._degrees is not None and top > len(self._degrees):
                fresh = np.zeros(max(top, 2 * len(self._degrees)), dtype=np.int64)
                fresh[: len(self._degrees)] = self._degrees
                self._degrees = fresh

    # ------------------------------------------------------------------
    # Exact mode (lazy membership structures)
    # ------------------------------------------------------------------
    def _activate_exact(self) -> None:
        if self._edge_set is not None:
            return
        keys = np.unique(_pack(self._buf[: self._m, 0], self._buf[: self._m, 1]))
        self._edge_set = set(keys.tolist())
        lo, hi = _unpack(keys)
        self._grow_edges(len(keys))
        self._buf[: len(keys), 0] = lo
        self._buf[: len(keys), 1] = hi
        self._m = len(keys)
        degrees = np.bincount(lo, minlength=max(self._n, 1)) + np.bincount(
            hi, minlength=max(self._n, 1)
        )
        self._degrees = degrees.astype(np.int64)
        # The buffer was rewritten; merged union-find prefixes are void.
        self._uf = None
        self._uf_pos = 0

    # ------------------------------------------------------------------
    # EdgeSink API
    # ------------------------------------------------------------------
    def add_node(self, node: int) -> None:
        node = int(node)
        if node < 0:
            raise ValueError("node labels must be non-negative integers")
        self._ensure_node(node + 1)

    def add_nodes_from(self, nodes: Iterable[int]) -> None:
        if isinstance(nodes, range):
            if len(nodes) and (nodes[0] < 0 or nodes[-1] < 0):
                raise ValueError("node labels must be non-negative integers")
            if len(nodes):
                self._ensure_node(max(nodes[0], nodes[-1]) + 1)
            return
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: int, v: int) -> None:
        u, v = int(u), int(v)
        if u == v:
            return
        if u < 0 or v < 0:
            raise ValueError("node labels must be non-negative integers")
        self._ensure_node((u if u > v else v) + 1)
        if self._edge_set is not None:
            key = (u << 32) | v if u < v else (v << 32) | u
            if key in self._edge_set:
                return
            self._edge_set.add(key)
            self._degrees[u] += 1
            self._degrees[v] += 1
        self._grow_edges(self._m + 1)
        self._buf[self._m, 0] = u
        self._buf[self._m, 1] = v
        self._m += 1
        if self.spool is not None:
            self.spool.append(self._buf[self._m - 1 : self._m])

    def add_chunk(self, chunk: np.ndarray) -> None:
        arr = np.asarray(chunk)
        if arr.size == 0:
            return
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("edge chunks must have shape (k, 2)")
        if arr.min() < 0:
            raise ValueError("node labels must be non-negative integers")
        arr = arr[arr[:, 0] != arr[:, 1]]  # drop self-loops
        if len(arr) == 0:
            return
        if self._edge_set is not None:
            for row in arr:
                self.add_edge(int(row[0]), int(row[1]))
            return
        self._ensure_node(int(arr.max()) + 1)
        self._grow_edges(self._m + len(arr))
        self._buf[self._m : self._m + len(arr)] = arr
        self._m += len(arr)
        if self.spool is not None:
            self.spool.append(arr)

    def remove_edge(self, u: int, v: int) -> None:
        u, v = int(u), int(v)
        self._activate_exact()
        key = (u << 32) | v if u < v else (v << 32) | u
        if key not in self._edge_set:
            raise KeyError(f"edge ({u!r}, {v!r}) not in graph")
        self._edge_set.remove(key)
        self._degrees[u] -= 1
        self._degrees[v] -= 1
        self._removed = True
        self._uf = None  # splitting an edge invalidates merged state
        self._uf_pos = 0

    def has_edge(self, u: int, v: int) -> bool:
        u, v = int(u), int(v)
        if u >= self._n or v >= self._n or u < 0 or v < 0:
            return False
        self._activate_exact()
        key = (u << 32) | v if u < v else (v << 32) | u
        return key in self._edge_set

    def degree(self, node: int) -> int:
        node = int(node)
        if node < 0 or node >= self._n:
            raise KeyError(node)
        self._activate_exact()
        return int(self._degrees[node])

    def degrees(self) -> np.ndarray:
        """Current degree of every node (index == label), int64."""
        if self._edge_set is not None:
            return self._degrees[: self._n].copy()
        lo = self._buf[: self._m, 0]
        hi = self._buf[: self._m, 1]
        keys = np.unique(_pack(lo, hi))
        a, b = _unpack(keys)
        return (
            np.bincount(a, minlength=max(self._n, 1))
            + np.bincount(b, minlength=max(self._n, 1))
        )[: self._n].astype(np.int64)

    def number_of_nodes(self) -> int:
        return self._n

    def number_of_edges(self) -> int:
        self._activate_exact()
        return len(self._edge_set)

    # ------------------------------------------------------------------
    # Connectivity (incremental union-find)
    # ------------------------------------------------------------------
    def _rebuild_from_set(self) -> None:
        """After removals the buffer is stale; recreate it from the set."""
        keys = np.fromiter(self._edge_set, dtype=np.int64, count=len(self._edge_set))
        keys.sort()
        lo, hi = _unpack(keys)
        self._m = len(keys)
        self._grow_edges(self._m)
        self._buf[: self._m, 0] = lo
        self._buf[: self._m, 1] = hi
        self._removed = False
        self._uf = None
        self._uf_pos = 0

    def _refresh_union_find(self) -> _UnionFind:
        if self._removed:
            self._rebuild_from_set()
        if self._uf is None:
            self._uf = _UnionFind(self._n)
            self._uf_pos = 0
        uf = self._uf
        uf.grow(self._n)
        if self._uf_pos < self._m:
            buf = self._buf
            find = uf.find
            parent = uf.parent
            for i in range(self._uf_pos, self._m):
                ra = find(int(buf[i, 0]))
                rb = find(int(buf[i, 1]))
                if ra != rb:
                    if ra < rb:
                        parent[rb] = ra
                    else:
                        parent[ra] = rb
            self._uf_pos = self._m
        return uf

    def connected(self) -> bool:
        if self._n <= 1:
            return True
        roots = self._refresh_union_find().roots()[: self._n]
        return bool((roots == roots[0]).all()) and int(roots[0]) == 0

    def component_roots(self) -> np.ndarray:
        """Smallest-member root id per node (length ``number_of_nodes``)."""
        if self._n == 0:
            return np.empty(0, dtype=np.int32)
        return self._refresh_union_find().roots()[: self._n].copy()

    # ------------------------------------------------------------------
    # Finalize
    # ------------------------------------------------------------------
    def _unique_edges(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._removed:
            self._rebuild_from_set()
        lo = self._buf[: self._m, 0]
        hi = self._buf[: self._m, 1]
        if self._edge_set is not None:
            # Exact mode keeps the buffer duplicate-free already.
            return (
                np.minimum(lo, hi).astype(np.int64),
                np.maximum(lo, hi).astype(np.int64),
            )
        keys = np.unique(_pack(lo, hi))
        return _unpack(keys)

    def finalize(self, name: str = "", component: str = "all") -> CSRGraph:
        """Freeze the streamed edges into a canonical :class:`CSRGraph`.

        ``component="giant"`` keeps only the largest connected component
        (ties: the component containing the smallest node id, matching
        :func:`~repro.graph.traversal.largest_connected_component` on
        insertion-ordered integer labels); node labels are preserved.
        """
        if component not in ("all", "giant"):
            raise ValueError(f"unknown component selector {component!r}")
        a, b = self._unique_edges()
        n = self._n
        nodes: Union[range, List[int]] = range(n)
        if component == "giant" and n > 1:
            roots = self.component_roots()
            sizes = np.bincount(roots, minlength=n)
            max_size = int(sizes.max()) if n else 0
            member_sizes = sizes[roots]
            winner = int(roots[int(np.argmax(member_sizes == max_size))])
            keep = roots == winner
            if not keep.all():
                remap = np.cumsum(keep) - 1
                mask = keep[a]
                a = remap[a[mask]]
                b = remap[b[mask]]
                nodes = [int(x) for x in np.flatnonzero(keep)]
                n = len(nodes)
        src = np.concatenate([a, b])
        dst = np.concatenate([b, a])
        key = (src << 32) | dst
        del src, dst
        key.sort()
        indices = (key & _KEY_MASK).astype(np.int32)
        counts = np.bincount((key >> 32).astype(np.int64), minlength=n)
        del key
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        csr = CSRGraph(indptr.astype(np.int32), indices, nodes, name=name)
        self.close()
        return csr

    def close(self) -> None:
        """Release buffers (and any memmap spill file)."""
        spill = self._spill_path
        self._buf = np.empty((0, 2), dtype=np.int32)
        self._spill_path = None
        self._m = 0
        self._uf = None
        self._uf_pos = 0
        self._edge_set = None if self._edge_set is None else set()
        if self._degrees is not None:
            self._degrees = np.zeros(1, dtype=np.int64)
        if spill is not None:
            self._drop_spill_file(spill)


def materialize_into(
    sink: EdgeSink,
    graph: Graph,
    name: Optional[str] = None,
    component: str = "all",
    chunk_edges: int = 1 << 16,
):
    """Replay a materialized :class:`Graph` into a sink and finalize.

    The fallback for generators whose construction is inherently
    dict-backed (e.g. the Albert–Barabási rewiring step samples from the
    materialized edge list): the build happens on ``Graph`` as always,
    then streams into the caller's sink so the public contract — same
    edge set on either path, frozen output from a sink — still holds.
    """
    for node in graph.nodes():
        sink.add_node(node)
    pending: List[Tuple[int, int]] = []
    for u, v in graph.iter_edges():
        pending.append((u, v))
        if len(pending) >= chunk_edges:
            sink.add_chunk(np.asarray(pending, dtype=np.int64))
            pending.clear()
    if pending:
        sink.add_chunk(np.asarray(pending, dtype=np.int64))
    return sink.finalize(
        name=graph.name if name is None else name, component=component
    )
