"""Topology generators: canonical networks, the structural generators
(Transit-Stub, Tiers), the random/geographic Waxman model, and the
degree-based family (PLRG, B-A, AB, BT/GLP, BRITE, Inet) with the
Appendix D.1 wiring variants.

Every generator takes an optional ``sink`` (see
:mod:`repro.generators.builder`): omitted, it returns a mutable
``Graph`` exactly as before; given a ``GraphBuilder``, edges stream into
growing CSR buffers and a frozen ``CSRGraph`` comes back without the
dict-of-sets form ever existing.  :func:`get` / :func:`available` expose
the uniform :class:`~repro.generators.registry.GeneratorSpec` front
door.
"""

from repro.generators.base import (
    GenerationError,
    giant_component,
    make_rng,
    require,
    restrict_roles,
)
from repro.generators.builder import (
    EdgeSink,
    EdgeSpool,
    GraphBuilder,
    GraphSink,
    materialize_into,
)
from repro.generators.canonical import (
    complete_graph,
    erdos_renyi,
    erdos_renyi_gnm,
    kary_tree,
    linear_chain,
    mesh,
    ring,
)
from repro.generators.waxman import waxman
from repro.generators.transit_stub import TransitStubParams, transit_stub, transit_stub_with_roles
from repro.generators.tiers import TiersParams, tiers, tiers_with_roles
from repro.generators.plrg import plrg
from repro.generators.barabasi_albert import albert_barabasi_extended, barabasi_albert
from repro.generators.glp import glp
from repro.generators.brite import brite
from repro.generators.inet import inet
from repro.generators.degree_sequence import (
    WIRING_METHODS,
    degree_ccdf,
    expected_average_degree,
    fit_power_law_exponent,
    is_graphical,
    power_law_degrees,
    rewire_with_method,
    wire_deterministic,
    wire_highest_first,
    wire_plrg,
    wire_proportional,
    wire_uniform,
    wire_unsatisfied_proportional,
)
from repro.generators.registry import GeneratorSpec, available, get, specs

__all__ = [
    "GenerationError",
    "giant_component",
    "make_rng",
    "require",
    "restrict_roles",
    "EdgeSink",
    "EdgeSpool",
    "GraphBuilder",
    "GraphSink",
    "materialize_into",
    "GeneratorSpec",
    "available",
    "get",
    "specs",
    "complete_graph",
    "erdos_renyi",
    "erdos_renyi_gnm",
    "kary_tree",
    "linear_chain",
    "mesh",
    "ring",
    "waxman",
    "TransitStubParams",
    "transit_stub",
    "transit_stub_with_roles",
    "TiersParams",
    "tiers",
    "tiers_with_roles",
    "plrg",
    "barabasi_albert",
    "albert_barabasi_extended",
    "glp",
    "brite",
    "inet",
    "WIRING_METHODS",
    "degree_ccdf",
    "expected_average_degree",
    "fit_power_law_exponent",
    "is_graphical",
    "power_law_degrees",
    "rewire_with_method",
    "wire_deterministic",
    "wire_highest_first",
    "wire_plrg",
    "wire_proportional",
    "wire_uniform",
    "wire_unsatisfied_proportional",
]
