"""Barabási–Albert preferential attachment and the Albert–Barabási
extension (Appendix D.1's "B-A model" and its add/rewire variant).

"The B-A model is an evolutionary process that generates graphs with
power-law degree distributions.  The graph is grown incrementally, with
newly appearing nodes randomly connecting to already existing nodes, but
in proportion to their degrees."  The extended model [Albert & Barabási
2000] adds, "with a small, but uniform probability", link addition
between existing nodes and preferential re-wiring of existing links.

B-A streams natively: degree-proportional sampling runs off the repeated
-endpoints pool and per-step target dedupe is a local set, so no
membership queries ever reach the sink.  The extended model's re-wiring
step samples uniformly from the *materialized edge list* — an ordering
the streaming buffers deliberately do not reproduce — so with a sink it
builds on ``Graph`` first and replays (the edge set per seed is identical
either way, which is the public contract).
"""

from __future__ import annotations

from typing import List, Optional

from repro.generators.base import (
    GenerationError,
    Seed,
    giant_component,
    make_rng,
    require,
)
from repro.generators.builder import EdgeSink, GraphSink, materialize_into
from repro.graph.core import Graph


def _emit_barabasi_albert(dest: EdgeSink, n: int, m: int, rng) -> None:
    # Seed: a star over the first m+1 nodes (connected, nonzero degrees).
    pool: List[int] = []
    for v in range(1, m + 1):
        dest.add_edge(0, v)
        pool.extend((0, v))

    for new in range(m + 1, n):
        targets = set()
        while len(targets) < m:
            targets.add(pool[rng.randrange(len(pool))])
        for t in targets:
            dest.add_edge(new, t)
            pool.extend((new, t))


def barabasi_albert(
    n: int = 2000, m: int = 2, seed: Seed = None, sink: Optional[EdgeSink] = None
):
    """Classic B-A growth: each new node brings ``m`` preferential links.

    Sampling in proportion to degree uses the repeated-endpoints trick:
    every time an edge (u, v) is added, both u and v are appended to a
    pool, so a uniform draw from the pool is a degree-proportional draw.
    """
    require(m >= 1, "m must be >= 1")
    require(n > m, "n must exceed m")
    rng = make_rng(seed)
    name = f"B-A(n={n},m={m})"
    dest = sink if sink is not None else GraphSink()
    _emit_barabasi_albert(dest, n, m, rng)
    return dest.finalize(name=name, component="all")


def albert_barabasi_extended(
    n: int = 2000,
    m: int = 2,
    p_add: float = 0.15,
    p_rewire: float = 0.15,
    seed: Seed = None,
    sink: Optional[EdgeSink] = None,
):
    """The Albert–Barabási variant with link addition and re-wiring.

    At each step, with probability ``p_add`` add ``m`` new links between
    existing nodes (one endpoint uniform, the other preferential); with
    probability ``p_rewire`` re-wire ``m`` existing links to a
    preferentially chosen endpoint; otherwise grow a new node with ``m``
    preferential links.  Steps continue until ``n`` nodes exist.
    """
    require(
        p_add >= 0 and p_rewire >= 0 and p_add + p_rewire < 1.0,
        "need p_add, p_rewire >= 0 and p_add + p_rewire < 1",
    )
    require(m >= 1, "m must be >= 1")
    require(n > m + 1, "n must exceed m + 1")
    rng = make_rng(seed)
    graph = Graph(name=f"AB(n={n},m={m},p={p_add},q={p_rewire})")
    pool: List[int] = []
    for v in range(1, m + 1):
        graph.add_edge(0, v)
        pool.extend((0, v))

    def preferential() -> int:
        return pool[rng.randrange(len(pool))]

    guard = 0
    while graph.number_of_nodes() < n:
        guard += 1
        if guard > 100 * n:
            raise GenerationError("AB model failed to converge")
        r = rng.random()
        existing = graph.nodes()
        if r < p_add:
            for _ in range(m):
                u = existing[rng.randrange(len(existing))]
                v = preferential()
                if u != v and not graph.has_edge(u, v):
                    graph.add_edge(u, v)
                    pool.extend((u, v))
        elif r < p_add + p_rewire:
            edges = graph.edges()
            for _ in range(m):
                u, old = edges[rng.randrange(len(edges))]
                new_v = preferential()
                # ``edges`` is a snapshot: an earlier pass of this loop may
                # already have re-wired (u, old) away.
                if not graph.has_edge(u, old):
                    continue
                if new_v != u and not graph.has_edge(u, new_v):
                    graph.remove_edge(u, old)
                    graph.add_edge(u, new_v)
                    # Update the pool: replace one occurrence of old with new_v.
                    pool[pool.index(old)] = new_v
        else:
            new = graph.number_of_nodes()
            targets = set()
            while len(targets) < m:
                targets.add(preferential())
            for t in targets:
                graph.add_edge(new, t)
                pool.extend((new, t))
    if sink is not None:
        return materialize_into(sink, graph, component="giant")
    return giant_component(graph)
