"""Power-law degree sequences and the node-wiring variants of Appendix D.1.

The paper's central degree-based generator, PLRG, separates two concerns:

1. **The degree sequence** — degrees drawn from a power law
   ``P(degree = k) ∝ k^(-beta)``.
2. **The wiring method** — how stubs are matched into edges.

Appendix D.1 asks "does connectivity matter?" and answers *no*, provided
the wiring has "some notion of random connectivity": the PLRG clone
method, uniformly random matching, proportional matching and
unsatisfied-proportional matching all yield the same large-scale metrics,
while the *deterministic* high-to-high wiring produces "graphs that are
quite different from the PLRG".  Every one of those variants is
implemented here so the Figure 12/13 benches can reproduce that finding.

Every wiring takes an optional ``sink`` (see
:mod:`repro.generators.builder`): omitted, it returns the mutable
``Graph`` exactly as before; given, the same emission core streams into
the sink and the frozen result of ``sink.finalize()`` is returned.  Both
paths consume the RNG identically, so the edge set per seed is the same
either way.
"""

from __future__ import annotations

import bisect
import itertools
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.generators.base import Seed, giant_component, make_rng, require
from repro.generators.builder import EdgeSink, GraphSink
from repro.graph.core import Graph

#: Edge rows emitted per ``add_chunk`` call on the streaming path.
_CHUNK_EDGES = 1 << 17


# ----------------------------------------------------------------------
# Degree sequence sampling
# ----------------------------------------------------------------------

def power_law_degrees(
    n: int,
    exponent: float,
    seed: Seed = None,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
) -> List[int]:
    """Sample ``n`` degrees with ``P(k) ∝ k^(-exponent)``.

    Parameters
    ----------
    n:
        Number of nodes.
    exponent:
        Power-law exponent beta; the paper's PLRG instances use
        2.246–2.550 (Appendix C).
    min_degree / max_degree:
        Support of the distribution; ``max_degree`` defaults to ``n - 1``.

    The sum of the sampled degrees is forced even (one stub is added to a
    random node if necessary) so a stub matching exists.
    """
    require(n >= 1, "n must be >= 1")
    require(exponent > 1.0, "exponent must be > 1 for a normalisable power law")
    require(min_degree >= 1, "min_degree must be >= 1")
    rng = make_rng(seed)
    k_max = max_degree if max_degree is not None else max(min_degree, n - 1)
    require(k_max >= min_degree, "max_degree must be >= min_degree")

    # Inverse-CDF sampling over the discrete support.  The support table
    # is a numpy array (at million-node scale a Python float list here
    # would dwarf the streaming build's entire footprint); the per-node
    # draw loop keeps the historical random.Random consumption, so
    # sequences are unchanged per seed.
    support = np.arange(min_degree, k_max + 1, dtype=np.float64)
    cumulative = np.cumsum(support ** (-exponent))
    total = cumulative[-1]
    degrees = []
    for _ in range(n):
        r = rng.random() * total
        idx = bisect.bisect_left(cumulative, r)
        degrees.append(min_degree + idx)
    if sum(degrees) % 2 == 1:
        degrees[rng.randrange(n)] += 1
    return degrees


def expected_average_degree(
    exponent: float, min_degree: int = 1, max_degree: int = 10**4
) -> float:
    """Mean of the truncated power law (handy for parameter planning)."""
    num = sum(k * k ** (-exponent) for k in range(min_degree, max_degree + 1))
    den = sum(k ** (-exponent) for k in range(min_degree, max_degree + 1))
    return num / den


def is_graphical(degrees: Sequence[int]) -> bool:
    """Erdős–Gallai test: can ``degrees`` be realised by a simple graph?

    Inet runs "a feasibility test on the generated degree distribution";
    this is the classical check.
    """
    if sum(degrees) % 2 == 1:
        return False
    seq = sorted(degrees, reverse=True)
    n = len(seq)
    prefix = list(itertools.accumulate(seq))
    for k in range(1, n + 1):
        left = prefix[k - 1]
        right = k * (k - 1) + sum(min(d, k) for d in seq[k:])
        if left > right:
            return False
    return True


# ----------------------------------------------------------------------
# Wiring methods (Appendix D.1) — emission cores
# ----------------------------------------------------------------------
#
# Each `_emit_*` core writes one wiring into an EdgeSink.  The public
# `wire_*` wrappers below keep their historical (degrees, seed) -> Graph
# signature when `sink` is omitted.

def _shuffled_stubs(degrees: Sequence[int], rng) -> np.ndarray:
    """The stub multiset, shuffled in place with ``random.Random``.

    ``rng.shuffle`` runs its usual Fisher–Yates over the numpy array —
    the draws depend only on the length, and the initial contents equal
    the historical Python stub list, so the resulting permutation (and
    every downstream edge) is identical per seed to the old list-based
    code while costing 4 bytes per stub instead of a Python object.
    """
    stubs = np.repeat(
        np.arange(len(degrees), dtype=np.int32),
        np.asarray(degrees, dtype=np.int64),
    )
    rng.shuffle(stubs)
    return stubs


def _emit_plrg(dest: EdgeSink, degrees: Sequence[int], rng) -> None:
    stubs = _shuffled_stubs(degrees, rng)
    dest.add_nodes_from(range(len(degrees)))
    pairs = stubs[: 2 * (len(stubs) // 2)].reshape(-1, 2)
    for start in range(0, len(pairs), _CHUNK_EDGES):
        dest.add_chunk(pairs[start : start + _CHUNK_EDGES])


def _emit_uniform(dest: EdgeSink, degrees: Sequence[int], rng) -> None:
    remaining = list(degrees)
    unsatisfied = [node for node, d in enumerate(remaining) if d > 0]
    dest.add_nodes_from(range(len(degrees)))
    stale_limit = 50 * max(1, sum(degrees))
    attempts = 0
    while len(unsatisfied) > 1 and attempts < stale_limit:
        attempts += 1
        u, v = rng.sample(unsatisfied, 2)
        if dest.has_edge(u, v):
            continue
        dest.add_edge(u, v)
        for node in (u, v):
            remaining[node] -= 1
            if remaining[node] == 0:
                unsatisfied.remove(node)


def _emit_proportional(dest: EdgeSink, degrees: Sequence[int], rng) -> None:
    n = len(degrees)
    remaining = list(degrees)
    # Stub list sampling = degree-proportional choice.
    stubs = np.repeat(np.arange(n, dtype=np.int32), np.asarray(degrees, dtype=np.int64))
    dest.add_nodes_from(range(n))
    target_edges = sum(degrees) // 2
    attempts = 0
    limit = 50 * max(1, target_edges)
    while dest.number_of_edges() < target_edges and attempts < limit:
        attempts += 1
        u = int(stubs[rng.randrange(len(stubs))])
        v = int(stubs[rng.randrange(len(stubs))])
        if u == v or remaining[u] <= 0 or remaining[v] <= 0:
            continue
        if dest.has_edge(u, v):
            continue
        dest.add_edge(u, v)
        remaining[u] -= 1
        remaining[v] -= 1


def _emit_unsatisfied(dest: EdgeSink, degrees: Sequence[int], rng) -> None:
    stubs: List[int] = []
    for node, degree in enumerate(degrees):
        stubs.extend([node] * degree)
    dest.add_nodes_from(range(len(degrees)))
    attempts = 0
    limit = 50 * max(1, len(stubs))
    while len(stubs) > 1 and attempts < limit:
        attempts += 1
        i = rng.randrange(len(stubs))
        j = rng.randrange(len(stubs))
        if i == j:
            continue
        u, v = stubs[i], stubs[j]
        if u == v or dest.has_edge(u, v):
            # Swap-delete nothing: failed draw, try again.
            continue
        dest.add_edge(u, v)
        # Remove the two consumed stubs (larger index first).
        for k in sorted((i, j), reverse=True):
            stubs[k] = stubs[-1]
            stubs.pop()


def _emit_deterministic(dest: EdgeSink, degrees: Sequence[int], rng) -> None:
    del rng  # deterministic by construction
    n = len(degrees)
    order = sorted(range(n), key=lambda node: (-degrees[node], node))
    remaining = list(degrees)
    dest.add_nodes_from(range(n))
    for pos, u in enumerate(order):
        if remaining[u] <= 0:
            continue
        for v in order[pos + 1:]:
            if remaining[u] <= 0:
                break
            if remaining[v] <= 0 or dest.has_edge(u, v):
                continue
            dest.add_edge(u, v)
            remaining[u] -= 1
            remaining[v] -= 1


def _emit_highest_first(dest: EdgeSink, degrees: Sequence[int], rng) -> None:
    n = len(degrees)
    remaining = list(degrees)
    stubs = np.repeat(np.arange(n, dtype=np.int32), np.asarray(degrees, dtype=np.int64))
    dest.add_nodes_from(range(n))
    order = sorted(range(n), key=lambda node: (-degrees[node], node))
    limit = 50 * max(1, len(stubs))
    attempts = 0
    for u in order:
        while remaining[u] > 0 and attempts < limit:
            attempts += 1
            v = int(stubs[rng.randrange(len(stubs))])
            if v == u or remaining[v] <= 0 or dest.has_edge(u, v):
                continue
            dest.add_edge(u, v)
            remaining[u] -= 1
            remaining[v] -= 1
        if attempts >= limit:
            break


_EMITTERS: Dict[str, Callable] = {
    "plrg": _emit_plrg,
    "uniform": _emit_uniform,
    "proportional": _emit_proportional,
    "unsatisfied": _emit_unsatisfied,
    "highest_first": _emit_highest_first,
    "deterministic": _emit_deterministic,
}


def _wire(
    method: str, name: str, degrees: Sequence[int], seed: Seed, sink: Optional[EdgeSink]
):
    require(
        all(d >= 0 for d in degrees),
        "degrees must be non-negative",
    )
    rng = make_rng(seed)
    dest = sink if sink is not None else GraphSink()
    _EMITTERS[method](dest, degrees, rng)
    return dest.finalize(name=name, component="all")


def wire_plrg(
    degrees: Sequence[int], seed: Seed = None, sink: Optional[EdgeSink] = None
):
    """The PLRG wiring: clone each node per its degree, match uniformly.

    "the PLRG generator makes v_i copies of each node i.  Links are then
    assigned by randomly picking two node copies and assigning a link
    between them, until no more copies remain" — self-loops and duplicate
    links are dropped afterwards.
    """
    return _wire("plrg", "PLRG-wired", degrees, seed, sink)


def wire_uniform(
    degrees: Sequence[int], seed: Seed = None, sink: Optional[EdgeSink] = None
):
    """Uniformly random wiring, *not* proportional to unsatisfied degree.

    Repeatedly picks two distinct nodes uniformly among those with
    unsatisfied degree and links them (Palmer & Steffen style, "connects
    the nodes randomly, without cloning").  Appendix D.1: "Even for the
    uniformly random connectivity method ... the large-scale metrics are
    qualitatively similar to the PLRG."
    """
    return _wire("uniform", "uniform-wired", degrees, seed, sink)


def wire_proportional(
    degrees: Sequence[int], seed: Seed = None, sink: Optional[EdgeSink] = None
):
    """Wiring proportional to *assigned* degree.

    Each endpoint of each new link is drawn with probability proportional
    to the node's assigned degree (with replacement of candidates), until
    every node's degree budget is exhausted or no progress is possible.
    """
    return _wire("proportional", "proportional-wired", degrees, seed, sink)


def wire_unsatisfied_proportional(
    degrees: Sequence[int], seed: Seed = None, sink: Optional[EdgeSink] = None
):
    """Wiring proportional to *unsatisfied* degree (assigned minus used).

    One of the "other variants of these random connectivity techniques"
    Appendix D.1 lists: endpoints drawn in proportion to the degree still
    to be satisfied.  Implemented as a dynamic stub pool: links consume
    stubs, so the pool is exactly unsatisfied-degree-proportional.
    """
    return _wire("unsatisfied", "unsatisfied-wired", degrees, seed, sink)


def wire_deterministic(
    degrees: Sequence[int], seed: Seed = None, sink: Optional[EdgeSink] = None
):
    """The deterministic high-to-high wiring of Appendix D.1.

    "Start with the highest degree node, add one link each from this node
    to each lower degree node in decreasing degree order (skipping nodes
    whose degree has already been satisfied), then repeat for the next
    highest degree node whose degree has not been satisfied."

    The paper: "not surprisingly, deterministic connectivity results in
    graphs that are quite different from the PLRG" — the Figure 13
    ablation bench verifies exactly that.  ``seed`` is accepted for
    interface uniformity but unused.
    """
    return _wire("deterministic", "deterministic-wired", degrees, seed, sink)


def wire_highest_first(
    degrees: Sequence[int], seed: Seed = None, sink: Optional[EdgeSink] = None
):
    """Ordered processing with random partners.

    Another Appendix D.1 variant: "start with the highest degree ...
    nodes and connect to other nodes either uniformly, or in proportion
    to the degree, or in proportion to the 'unsatisfied' degree".  This
    one processes nodes in decreasing degree order and draws each
    partner in proportion to assigned degree (rejecting satisfied
    candidates) — ordered like the deterministic wiring, random like the
    PLRG, and (per the paper) it behaves like the PLRG because the
    randomness is what matters.
    """
    return _wire("highest_first", "highest-first-wired", degrees, seed, sink)


WIRING_METHODS: Dict[str, Callable[..., Graph]] = {
    "plrg": wire_plrg,
    "uniform": wire_uniform,
    "proportional": wire_proportional,
    "unsatisfied": wire_unsatisfied_proportional,
    "highest_first": wire_highest_first,
    "deterministic": wire_deterministic,
}


def rewire_with_method(
    graph: Graph,
    method: str = "plrg",
    seed: Seed = None,
    sink: Optional[EdgeSink] = None,
):
    """Reconnect an existing graph's degree sequence with another wiring.

    This is the Appendix D.1 / Figure 13 experiment: "we created two new
    graphs by first assigning degrees to nodes in each graph using the
    degree distributions of the B-A and respectively Brite graphs ... we
    connect them together using the PLRG connectivity algorithm."
    Returns the giant component of the rewired graph.
    """
    require(
        method in _EMITTERS,
        f"unknown wiring method {method!r}; choose from {sorted(_EMITTERS)}",
    )
    degrees = [graph.degree(node) for node in graph.nodes()]
    rng = make_rng(seed)
    name = f"{graph.name}+{method}-rewired"
    if sink is None:
        dest = GraphSink()
        _EMITTERS[method](dest, degrees, rng)
        rewired = dest.graph
        rewired.name = name
        return giant_component(rewired)
    _EMITTERS[method](sink, degrees, rng)
    return sink.finalize(name=name, component="giant")


# Canonical implementations live in repro.metrics.degree (measuring a
# graph's degree distribution is a metric); re-exported here so the
# generator-side API keeps working and the two can never drift.
from repro.metrics.degree import (  # noqa: E402
    degree_ccdf,
    fit_power_law_exponent,
)
