"""The Bu–Towsley GLP generator (the paper's "BT", Section 4.4).

Bu & Towsley [Infocom 2002] modified the Albert–Barabási variant "to
allow more flexibility in specifying how the nodes are connected":
Generalized Linear Preference.  Preferential choice picks node i with
probability proportional to ``degree(i) - beta_glp`` where
``beta_glp < 1`` (negative values flatten the preference, values close
to 1 sharpen it).  At each step:

* with probability ``p``: add ``m`` new links between existing nodes,
  both endpoints drawn by generalized linear preference;
* with probability ``1 - p``: add a new node with ``m`` links to
  preferentially drawn existing nodes.

The BT paper fits ``m ≈ 1.13, p ≈ 0.4695, beta_glp ≈ 0.6447`` to the AS
graph; fractional ``m`` is realised by adding ``ceil(m)`` links with the
fractional probability and ``floor(m)`` otherwise.

The rejection sampler queries ``degree``/``has_edge`` as it goes, so on
the streaming path the sink runs in exact mode (incremental packed edge
set + degree array) — still no dict-of-sets graph.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.generators.base import GenerationError, Seed, make_rng, require
from repro.generators.builder import EdgeSink, GraphSink


def _emit_glp(dest: EdgeSink, n: int, m: float, p: float, beta_glp: float, rng) -> None:
    # Seed triangle-free start: a 2-node line, as in the GLP paper (m0=2).
    dest.add_edge(0, 1)
    node_list = [0, 1]
    max_deg = 1

    def links_this_step() -> int:
        base = math.floor(m)
        frac = m - base
        count = base + (1 if rng.random() < frac else 0)
        return max(1, count)

    def preferential() -> int:
        # Weight(i) = degree(i) - beta_glp > 0 because degrees are >= 1
        # and beta_glp < 1.  Rejection sampling against the max degree
        # keeps draws cheap without an indexed weight structure.
        max_w = max_deg - beta_glp
        guard = 0
        while True:
            guard += 1
            if guard > 10000:
                raise GenerationError("GLP preferential sampling stalled")
            candidate = node_list[rng.randrange(len(node_list))]
            w = dest.degree(candidate) - beta_glp
            if rng.random() * max_w <= w:
                return candidate

    guard = 0
    while dest.number_of_nodes() < n:
        guard += 1
        if guard > 100 * n:
            raise GenerationError("GLP failed to reach target size")
        if rng.random() < p and dest.number_of_nodes() >= 3:
            for _ in range(links_this_step()):
                u = preferential()
                v = preferential()
                if u != v and not dest.has_edge(u, v):
                    dest.add_edge(u, v)
                    max_deg = max(max_deg, dest.degree(u), dest.degree(v))
        else:
            new = dest.number_of_nodes()
            count = min(links_this_step(), dest.number_of_nodes())
            targets = set()
            attempts = 0
            while len(targets) < count and attempts < 1000:
                attempts += 1
                targets.add(preferential())
            for t in targets:
                dest.add_edge(new, t)
                max_deg = max(max_deg, dest.degree(t), dest.degree(new))
            node_list.append(new)


def glp(
    n: int = 2000,
    m: float = 1.13,
    p: float = 0.4695,
    beta_glp: float = 0.6447,
    seed: Seed = None,
    sink: Optional[EdgeSink] = None,
):
    """Generate a GLP ("BT") graph; returns the giant component.

    Parameters
    ----------
    n:
        Target number of nodes.
    m:
        (Possibly fractional) links added per step.
    p:
        Probability that a step adds links rather than a node.
    beta_glp:
        Preference shift, < 1.  ``beta_glp = 0`` recovers linear (B-A)
        preference for the new-node steps.
    sink:
        Optional edge sink (see :mod:`repro.generators.builder`).
    """
    require(0 <= p < 1, "p must be in [0, 1)")
    require(beta_glp < 1, "beta_glp must be < 1")
    require(m > 0, "m must be positive")
    require(n >= 3, "n must be >= 3")
    rng = make_rng(seed)
    name = f"BT(n={n},m={m},p={p},beta={beta_glp})"
    dest = sink if sink is not None else GraphSink()
    _emit_glp(dest, n, m, p, beta_glp, rng)
    return dest.finalize(name=name, component="giant")
