"""The Inet generator (Jin, Chen & Jamin), as described in Appendix D.1.

"after conducting a feasibility test on the generated degree distribution
to see if the resulting graph would be connected, the Inet generator
creates a spanning tree among nodes of degree larger than one, connects
degree one nodes to this spanning tree with proportional connectivity,
then satisfies the degrees of remaining nodes in decreasing degree
order."

Our reimplementation samples the degree sequence from a power law (the
original derives it from measured AS growth curves; the paper's
conclusions only require a heavy tail) and follows the three wiring
phases exactly.

Phases 2 and 3 reject duplicate links via ``has_edge``, so on the
streaming path the sink runs in exact mode; phase 1 (the spanning tree)
is query-free.
"""

from __future__ import annotations

from typing import List, Optional

from repro.generators.base import GenerationError, Seed, make_rng
from repro.generators.builder import EdgeSink, GraphSink
from repro.generators.degree_sequence import is_graphical, power_law_degrees


def _emit_inet(dest: EdgeSink, n: int, degrees: List[int], rng) -> None:
    order = sorted(range(n), key=lambda i: -degrees[i])
    remaining = list(degrees)
    dest.add_nodes_from(range(n))

    core_nodes = [i for i in order if degrees[i] > 1]
    leaf_nodes = [i for i in order if degrees[i] == 1]

    # Phase 1: random spanning tree over the degree>1 core, attachment
    # probability proportional to assigned degree.
    in_tree = [core_nodes[0]]
    tree_stubs = [core_nodes[0]] * degrees[core_nodes[0]]
    for node in core_nodes[1:]:
        target = tree_stubs[rng.randrange(len(tree_stubs))]
        dest.add_edge(node, target)
        remaining[node] -= 1
        remaining[target] -= 1
        in_tree.append(node)
        tree_stubs.extend([node] * degrees[node])

    # Phase 2: attach degree-1 nodes to the tree with proportional
    # connectivity ("the likelihood of attaching to a node is
    # proportional to its degree").
    for leaf in leaf_nodes:
        guard = 0
        while True:
            guard += 1
            if guard > 100000:
                raise GenerationError("Inet leaf attachment stalled")
            target = tree_stubs[rng.randrange(len(tree_stubs))]
            if target != leaf and not dest.has_edge(leaf, target):
                dest.add_edge(leaf, target)
                remaining[leaf] -= 1
                remaining[target] -= 1
                break

    # Phase 3: satisfy residual degrees in decreasing degree order, again
    # with degree-proportional partner choice among unsatisfied nodes.
    unsatisfied_stubs: List[int] = []
    for node in order:
        if remaining[node] > 0:
            unsatisfied_stubs.extend([node] * remaining[node])
    attempts = 0
    limit = 50 * max(1, len(unsatisfied_stubs))
    satisfied = {node for node in range(n) if remaining[node] <= 0}
    for node in order:
        if node in satisfied:
            continue
        while remaining[node] > 0 and attempts < limit:
            attempts += 1
            partner = unsatisfied_stubs[rng.randrange(len(unsatisfied_stubs))]
            if (
                partner == node
                or remaining[partner] <= 0
                or dest.has_edge(node, partner)
            ):
                continue
            dest.add_edge(node, partner)
            remaining[node] -= 1
            remaining[partner] -= 1
        if attempts >= limit:
            break  # residual stubs unplaceable; acceptable, as in Inet


def inet(
    n: int = 2000,
    exponent: float = 2.2,
    seed: Seed = None,
    max_degree: Optional[int] = None,
    max_resample: int = 20,
    sink: Optional[EdgeSink] = None,
):
    """Generate an Inet-style graph; returns the giant component.

    Parameters
    ----------
    n:
        Number of nodes.
    exponent:
        Power-law exponent of the sampled degree sequence.
    max_degree:
        Optional degree cap (default ``n - 1``).
    max_resample:
        Feasibility retries before giving up.
    sink:
        Optional edge sink (see :mod:`repro.generators.builder`).
    """
    rng = make_rng(seed)
    degrees: Optional[List[int]] = None
    for _ in range(max_resample):
        candidate = power_law_degrees(
            n, exponent, seed=rng, max_degree=max_degree
        )
        # Feasibility: graphical, and enough degree->1 nodes to hang off
        # the spanning tree of the >1-degree core.
        core = [d for d in candidate if d > 1]
        if len(core) >= 2 and is_graphical(candidate):
            degrees = candidate
            break
    if degrees is None:
        raise GenerationError("could not sample a feasible Inet degree sequence")

    name = f"Inet(n={n},beta={exponent})"
    dest = sink if sink is not None else GraphSink()
    _emit_inet(dest, n, degrees, rng)
    return dest.finalize(name=name, component="giant")
