"""One uniform front door for every topology generator.

Each generator is registered as a :class:`GeneratorSpec` whose ``build``
callable has the uniform signature ``build(n, seed=None, sink=None,
**params)``:

* ``n`` — the target node count.  Generators whose natural inputs are
  structural (tree depth, mesh side, transit-stub domain shape) derive a
  parameter vector approximating ``n`` nodes; explicit structural
  parameters (``depth=6``, ``rows=30``, ``params=TransitStubParams(...)``)
  always win over the derivation, so pinned instances — the Figure-1
  harness registry, the CLI — are bit-for-bit unchanged.
* ``seed`` — reproducibility seed (ignored by the deterministic
  canonical networks).
* ``sink`` — optional :class:`~repro.generators.builder.EdgeSink`.
  Omitted: a mutable ``Graph``, exactly as the underlying function has
  always returned.  A ``GraphBuilder``: a frozen ``CSRGraph`` streamed
  without ever building the dict form (``streaming=False`` specs
  materialize internally and replay; the edge set per seed is identical
  either way).

Use :func:`get` / :func:`available` to look specs up::

    from repro.generators import registry
    spec = registry.get("plrg")
    graph = spec.build(10_000, seed=3, sink=GraphBuilder())

Invalid parameters raise :class:`~repro.generators.base.GenerationError`
(a ``ValueError`` subclass) uniformly across the family.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.generators.base import Seed, require
from repro.generators.builder import EdgeSink
from repro.generators.barabasi_albert import (
    albert_barabasi_extended,
    barabasi_albert,
)
from repro.generators.brite import brite
from repro.generators.canonical import (
    erdos_renyi,
    kary_tree,
    linear_chain,
    mesh,
)
from repro.generators.glp import glp
from repro.generators.inet import inet
from repro.generators.plrg import plrg
from repro.generators.tiers import TiersParams, tiers
from repro.generators.transit_stub import TransitStubParams, transit_stub
from repro.generators.waxman import waxman

__all__ = [
    "GeneratorSpec",
    "get",
    "available",
    "specs",
]


@dataclasses.dataclass(frozen=True)
class GeneratorSpec:
    """A registered generator: metadata plus the uniform build callable.

    ``streaming`` is True when a ``GraphBuilder`` sink is fed directly by
    the generator (no intermediate dict graph); False when the generator
    must materialize internally and replay into the sink (the AB model's
    re-wiring step samples the materialized edge list).
    """

    name: str
    category: str  # "canonical" | "structural" | "degree-based"
    streaming: bool
    description: str
    defaults: Mapping[str, object]
    _build: Callable[..., object]

    def build(
        self, n: int, seed: Seed = None, sink: Optional[EdgeSink] = None, **params
    ):
        """Build an ~``n``-node instance; see the module docstring."""
        return self._build(n, seed=seed, sink=sink, **params)


_REGISTRY: Dict[str, GeneratorSpec] = {}


def _register(
    name: str,
    category: str,
    streaming: bool,
    description: str,
    defaults: Mapping[str, object],
    build: Callable[..., object],
) -> None:
    _REGISTRY[name] = GeneratorSpec(
        name=name,
        category=category,
        streaming=streaming,
        description=description,
        defaults=dict(defaults),
        _build=build,
    )


def get(name: str) -> GeneratorSpec:
    """Look up a generator spec by its registry name."""
    require(
        name in _REGISTRY,
        f"unknown generator {name!r}; available: {', '.join(sorted(_REGISTRY))}",
    )
    return _REGISTRY[name]


def available() -> List[str]:
    """Registered generator names, in registration (paper) order."""
    return list(_REGISTRY)


def specs() -> List[GeneratorSpec]:
    """All registered specs, in registration order."""
    return [_REGISTRY[name] for name in _REGISTRY]


# ---------------------------------------------------------------------------
# Canonical networks
# ---------------------------------------------------------------------------


def _build_tree(
    n: int,
    seed: Seed = None,
    sink: Optional[EdgeSink] = None,
    branching: int = 3,
    depth: Optional[int] = None,
):
    if depth is None:
        require(n >= 1, "n must be >= 1")
        require(branching >= 1, "branching must be >= 1")
        # Smallest complete k-ary tree with at least n nodes.
        depth = 0
        total = 1
        layer = 1
        while total < n:
            depth += 1
            layer *= branching
            total += layer
    return kary_tree(branching, depth, sink=sink)


def _build_mesh(
    n: int,
    seed: Seed = None,
    sink: Optional[EdgeSink] = None,
    rows: Optional[int] = None,
    cols: Optional[int] = None,
):
    if rows is None:
        require(n >= 1, "n must be >= 1")
        rows = max(1, math.isqrt(n))
        if cols is None and rows * rows < n:
            cols = -(-n // rows)  # ceil
    return mesh(rows, cols, sink=sink)


def _build_linear(n: int, seed: Seed = None, sink: Optional[EdgeSink] = None):
    return linear_chain(n, sink=sink)


def _build_random(
    n: int,
    seed: Seed = None,
    sink: Optional[EdgeSink] = None,
    p: Optional[float] = None,
    connected_only: bool = True,
):
    if p is None:
        require(n >= 1, "n must be >= 1")
        # Comfortably supercritical: average degree 4, as in the paper's
        # Random rows.
        p = min(1.0, 4.0 / max(1, n - 1))
    return erdos_renyi(n, p, seed=seed, connected_only=connected_only, sink=sink)


# ---------------------------------------------------------------------------
# Structural generators: derive an Appendix-C-shaped parameter vector
# approximating n nodes unless one is given explicitly.
# ---------------------------------------------------------------------------


def _ts_params_for(n: int, **overrides) -> TransitStubParams:
    require(n >= 2, "n must be >= 2")
    # Default shape: 6 domains x 6 transit nodes, 3 stubs/node x 9 nodes
    # = 168 nodes per transit domain.  Scale the domain count for large
    # n; shrink the per-domain shape below one domain's worth.
    per_domain = 6 * (1 + 3 * 9)
    if n >= per_domain:
        fields: Dict[str, object] = {
            "transit_domains": max(1, round(n / per_domain))
        }
    else:
        nodes_per_stub = max(1, round((n / 6 - 1) / 3)) if n >= 30 else 1
        nodes_per_transit = min(6, max(1, n // (1 + 3 * nodes_per_stub)))
        fields = {
            "transit_domains": 1,
            "nodes_per_transit": nodes_per_transit,
            "nodes_per_stub": nodes_per_stub,
        }
    fields.update(overrides)
    return TransitStubParams(**fields)


def _build_transit_stub(
    n: int,
    seed: Seed = None,
    sink: Optional[EdgeSink] = None,
    params: Optional[TransitStubParams] = None,
    **overrides,
):
    if params is None:
        params = _ts_params_for(n, **overrides)
    elif overrides:
        params = dataclasses.replace(params, **overrides)
    return transit_stub(params, seed=seed, sink=sink)


def _tiers_params_for(n: int, **overrides) -> TiersParams:
    require(n >= 2, "n must be >= 2")
    # Keep the default shape's tier mass ratios (10% WAN / 40% MAN /
    # 50% LAN) while scaling counts with n.
    wan_nodes = max(2, round(0.1 * n))
    mans = max(1, round(n / 100))
    man_nodes = max(2, round(0.4 * n / mans))
    lan_nodes = 3
    lans_per_man = max(1, round(0.5 * n / (mans * lan_nodes)))
    fields: Dict[str, object] = {
        "wan_nodes": wan_nodes,
        "mans_per_wan": mans,
        "man_nodes": man_nodes,
        "lan_nodes": lan_nodes,
        "lans_per_man": lans_per_man,
    }
    fields.update(overrides)
    return TiersParams(**fields)


def _build_tiers(
    n: int,
    seed: Seed = None,
    sink: Optional[EdgeSink] = None,
    params: Optional[TiersParams] = None,
    **overrides,
):
    if params is None:
        params = _tiers_params_for(n, **overrides)
    elif overrides:
        params = dataclasses.replace(params, **overrides)
    return tiers(params, seed=seed, sink=sink)


def _build_waxman(
    n: int,
    seed: Seed = None,
    sink: Optional[EdgeSink] = None,
    alpha: float = 0.005,
    beta: float = 0.30,
    connected_only: bool = True,
):
    return waxman(
        n, alpha, beta, seed=seed, connected_only=connected_only, sink=sink
    )


# ---------------------------------------------------------------------------
# Degree-based generators
# ---------------------------------------------------------------------------


def _build_plrg(
    n: int,
    seed: Seed = None,
    sink: Optional[EdgeSink] = None,
    exponent: float = 2.246,
    max_degree: Optional[int] = None,
):
    return plrg(n, exponent, seed=seed, max_degree=max_degree, sink=sink)


def _build_ba(
    n: int, seed: Seed = None, sink: Optional[EdgeSink] = None, m: int = 2
):
    return barabasi_albert(n, m, seed=seed, sink=sink)


def _build_ab(
    n: int,
    seed: Seed = None,
    sink: Optional[EdgeSink] = None,
    m: int = 2,
    p_add: float = 0.15,
    p_rewire: float = 0.15,
):
    return albert_barabasi_extended(
        n, m, p_add=p_add, p_rewire=p_rewire, seed=seed, sink=sink
    )


def _build_brite(
    n: int,
    seed: Seed = None,
    sink: Optional[EdgeSink] = None,
    m: int = 2,
    placement: str = "heavy_tailed",
    waxman_alpha: float = 0.0,
    waxman_beta: float = 0.2,
    plane_side: int = 1000,
):
    return brite(
        n,
        m,
        placement=placement,
        waxman_alpha=waxman_alpha,
        waxman_beta=waxman_beta,
        plane_side=plane_side,
        seed=seed,
        sink=sink,
    )


def _build_glp(
    n: int,
    seed: Seed = None,
    sink: Optional[EdgeSink] = None,
    m: float = 1.13,
    p: float = 0.4695,
    beta_glp: float = 0.6447,
):
    return glp(n, m=m, p=p, beta_glp=beta_glp, seed=seed, sink=sink)


def _build_inet(
    n: int,
    seed: Seed = None,
    sink: Optional[EdgeSink] = None,
    exponent: float = 2.2,
    max_degree: Optional[int] = None,
    max_resample: int = 20,
):
    return inet(
        n,
        exponent,
        seed=seed,
        max_degree=max_degree,
        max_resample=max_resample,
        sink=sink,
    )


_register(
    "tree", "canonical", True,
    "complete k-ary tree (branching, depth; depth derived from n)",
    {"branching": 3, "depth": None}, _build_tree,
)
_register(
    "mesh", "canonical", True,
    "rectangular grid (rows, cols; side derived from n)",
    {"rows": None, "cols": None}, _build_mesh,
)
_register(
    "linear", "canonical", True,
    "path graph on n nodes",
    {}, _build_linear,
)
_register(
    "random", "canonical", True,
    "Erdos-Renyi G(n, p) giant component (p defaults to avg degree 4)",
    {"p": None, "connected_only": True}, _build_random,
)
_register(
    "waxman", "structural", True,
    "Waxman geographic random graph",
    {"alpha": 0.005, "beta": 0.30, "connected_only": True}, _build_waxman,
)
_register(
    "transit-stub", "structural", True,
    "GT-ITM Transit-Stub (params=TransitStubParams(...) or field overrides)",
    {"params": None}, _build_transit_stub,
)
_register(
    "tiers", "structural", True,
    "Tiers WAN/MAN/LAN hierarchy (params=TiersParams(...) or field overrides)",
    {"params": None}, _build_tiers,
)
_register(
    "plrg", "degree-based", True,
    "power-law random graph (Aiello-Chung-Lu), giant component",
    {"exponent": 2.246, "max_degree": None}, _build_plrg,
)
_register(
    "ba", "degree-based", True,
    "Barabasi-Albert preferential attachment",
    {"m": 2}, _build_ba,
)
_register(
    "ab", "degree-based", False,
    "Albert-Barabasi extension with link addition and re-wiring",
    {"m": 2, "p_add": 0.15, "p_rewire": 0.15}, _build_ab,
)
_register(
    "brite", "degree-based", True,
    "BRITE v1.0: heavy-tailed placement + preferential attachment",
    {"m": 2, "placement": "heavy_tailed"}, _build_brite,
)
_register(
    "glp", "degree-based", True,
    "Bu-Towsley Generalized Linear Preference (the paper's BT)",
    {"m": 1.13, "p": 0.4695, "beta_glp": 0.6447}, _build_glp,
)
_register(
    "inet", "degree-based", True,
    "Inet three-phase wiring over a power-law degree sequence",
    {"exponent": 2.2, "max_degree": None, "max_resample": 20}, _build_inet,
)
