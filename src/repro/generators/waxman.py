"""The Waxman generator (Waxman 1988), Section 3.1.2.

Nodes are placed uniformly at random on the unit square; each pair is
linked independently with probability

    P(u, v) = alpha * exp(-d(u, v) / (beta * L))

where ``d`` is the Euclidean distance and ``L`` the maximum possible
distance (the square's diagonal).  Per the paper's Appendix C, ``alpha``
"governs the link probability" and ``beta`` "the extent of geographic
bias": small beta strongly penalises long links; the paper notes that in
the extreme-bias regime the giant component "resembles a minimum spanning
tree", which our parameter-sweep bench reproduces.

The paper's headline instance is ``n=5000, alpha=0.005, beta=0.30``
(avg degree 7.22).  All n² pairs are evaluated with numpy in row blocks,
so the 5000-node instance is cheap — and each block's hits go to the
sink as one ``(k, 2)`` chunk, making this the most natural streaming
generator of the family (no membership queries at all).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.generators.base import Seed, make_rng, require
from repro.generators.builder import EdgeSink, GraphSink

_BLOCK_ROWS = 256


def _emit_waxman(
    dest: EdgeSink, positions: np.ndarray, alpha: float, beta: float, np_rng
) -> None:
    n = len(positions)
    diagonal = float(np.sqrt(2.0))
    dest.add_nodes_from(range(n))
    for start in range(0, n, _BLOCK_ROWS):
        stop = min(start + _BLOCK_ROWS, n)
        block = positions[start:stop]  # (b, 2)
        # Distances from each block row to every node with larger index.
        diff = block[:, None, :] - positions[None, :, :]  # (b, n, 2)
        dist = np.sqrt((diff * diff).sum(axis=2))  # (b, n)
        prob = alpha * np.exp(-dist / (beta * diagonal))
        # Evaluate each unordered pair exactly once: keep only columns
        # strictly above the diagonal (v > u).
        row_ids = start + np.arange(stop - start)
        prob[np.arange(n)[None, :] <= row_ids[:, None]] = 0.0
        draws = np_rng.random(prob.shape)
        hit_rows, hit_cols = np.nonzero(draws < prob)
        if len(hit_rows):
            chunk = np.empty((len(hit_rows), 2), dtype=np.int64)
            chunk[:, 0] = start + hit_rows
            chunk[:, 1] = hit_cols
            dest.add_chunk(chunk)


def waxman(
    n: int = 5000,
    alpha: float = 0.005,
    beta: float = 0.30,
    seed: Seed = None,
    connected_only: bool = True,
    sink: Optional[EdgeSink] = None,
):
    """Generate a Waxman graph.

    Parameters
    ----------
    n:
        Number of candidate nodes (the returned giant component may be
        smaller, exactly as in the paper's Appendix C table).
    alpha:
        Link-probability scale, in (0, 1].
    beta:
        Geographic-bias scale, > 0; larger is less biased.
    seed:
        Reproducibility seed.
    connected_only:
        Return only the largest connected component (paper behaviour).
    sink:
        Optional edge sink (see :mod:`repro.generators.builder`).
    """
    require(n >= 1, "n must be >= 1")
    require(0.0 < alpha <= 1.0, "alpha must be in (0, 1]")
    require(beta > 0.0, "beta must be > 0")
    rng = make_rng(seed)
    np_rng = np.random.default_rng(rng.getrandbits(64))

    positions = np_rng.random((n, 2))
    name = f"Waxman(n={n},a={alpha},b={beta})"
    dest = sink if sink is not None else GraphSink()
    _emit_waxman(dest, positions, alpha, beta, np_rng)
    return dest.finalize(
        name=name, component="giant" if connected_only else "all"
    )


def waxman_positions(n: int, seed: Seed = None) -> np.ndarray:
    """Just the node placement step (used by tests and by BRITE)."""
    rng = make_rng(seed)
    np_rng = np.random.default_rng(rng.getrandbits(64))
    return np_rng.random((n, 2))
