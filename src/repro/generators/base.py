"""Shared generator utilities: seeding, validation, connectivity
post-processing."""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple, Union

from repro.graph.core import Graph
from repro.graph.traversal import is_connected, largest_connected_component

Seed = Union[int, random.Random, None]


class GenerationError(ValueError, RuntimeError):
    """Raised when a generator cannot realise the requested parameters.

    Every generator raises this — never a bare ``ValueError`` or
    ``AssertionError`` — for invalid parameters and for constructions
    that fail to converge.  It subclasses both ``ValueError`` (what the
    parameter checks historically raised) and ``RuntimeError`` (what the
    convergence guards historically raised), so ``except`` clauses
    written against either era keep working.
    """


def require(condition: bool, message: str) -> None:
    """Parameter validation: raise :class:`GenerationError` unless true."""
    if not condition:
        raise GenerationError(message)


def make_rng(seed: Seed) -> random.Random:
    """Normalise a seed argument to a ``random.Random`` instance.

    ``None`` maps to a fixed default seed so that every generator is
    reproducible by default; pass an explicit integer (or your own
    ``Random``) to vary instances.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(0 if seed is None else seed)


def giant_component(
    graph: Graph, roles: Optional[Dict[int, str]] = None
) -> Union[Graph, Tuple[Graph, Dict[int, str]]]:
    """Return the largest connected component, preserving the name.

    The paper's treatment for every generator that can emit a
    disconnected graph ("we pick this connected component for our
    analyses").

    With ``roles`` given (a node -> role annotation, as produced by the
    structural generators) the annotation is restricted to the surviving
    nodes and returned alongside the component, so role maps can never
    go stale under component extraction.
    """
    if is_connected(graph):
        if roles is not None:
            return graph, restrict_roles(graph, roles)
        return graph
    component = largest_connected_component(graph)
    component.name = graph.name
    if roles is not None:
        return component, restrict_roles(component, roles)
    return component


def restrict_roles(graph, roles: Dict[int, str]) -> Dict[int, str]:
    """Restrict a node -> role map to the nodes actually in ``graph``.

    Works on either representation (mutable ``Graph`` or frozen
    ``CSRGraph``); iteration follows the graph's node order so the
    restricted map lists surviving nodes in insertion order.
    """
    return {node: roles[node] for node in graph.nodes() if node in roles}
