"""Shared generator utilities: seeding, connectivity post-processing."""

from __future__ import annotations

import random
from typing import Union

from repro.graph.core import Graph
from repro.graph.traversal import is_connected, largest_connected_component

Seed = Union[int, random.Random, None]


class GenerationError(RuntimeError):
    """Raised when a generator cannot realise the requested parameters."""


def make_rng(seed: Seed) -> random.Random:
    """Normalise a seed argument to a ``random.Random`` instance.

    ``None`` maps to a fixed default seed so that every generator is
    reproducible by default; pass an explicit integer (or your own
    ``Random``) to vary instances.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(0 if seed is None else seed)


def giant_component(graph: Graph) -> Graph:
    """Return the largest connected component, preserving the name.

    The paper's treatment for every generator that can emit a
    disconnected graph ("we pick this connected component for our
    analyses").
    """
    if is_connected(graph):
        return graph
    component = largest_connected_component(graph)
    component.name = graph.name
    return component
