"""The Transit-Stub generator (GT-ITM; Calvert, Doar & Zegura),
Section 3.1.2.

"Transit-Stub creates a number of top-level transit domains within which
nodes are connected randomly.  Attached to each transit domain are
several similarly generated stub domains.  Additional stub-to-transit and
stub-to-stub links are added randomly based upon a specified parameter."

Parameters follow the paper's Appendix C ordering.  The paper's headline
instance (Figure 1) is::

    TransitStubParams(
        stubs_per_transit_node=3, extra_transit_stub=0, extra_stub_stub=0,
        transit_domains=6, transit_connect_prob=0.55,
        nodes_per_transit=6, transit_edge_prob=0.32,
        nodes_per_stub=9, stub_edge_prob=0.248)

which yields 6*6 = 36 transit nodes and 36*3*9 = 972 stub nodes: 1008
nodes, average degree ~2.78.

The extra-link loops probe ``has_edge`` as they go, so on the streaming
path the sink runs in exact mode; the per-domain wiring itself is
query-free.  Role maps use original node ids, which both sink kinds
preserve.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.generators.base import (
    GenerationError,
    Seed,
    make_rng,
    require,
    restrict_roles,
)
from repro.generators.builder import EdgeSink, GraphSink


@dataclasses.dataclass(frozen=True)
class TransitStubParams:
    """Appendix C parameter vector for Transit-Stub."""

    stubs_per_transit_node: int = 3
    extra_transit_stub: int = 0
    extra_stub_stub: int = 0
    transit_domains: int = 6
    transit_connect_prob: float = 0.55
    nodes_per_transit: int = 6
    transit_edge_prob: float = 0.32
    nodes_per_stub: int = 9
    stub_edge_prob: float = 0.248

    def total_nodes(self) -> int:
        transit = self.transit_domains * self.nodes_per_transit
        return transit * (1 + self.stubs_per_transit_node * self.nodes_per_stub)


def _random_connected_domain(
    node_ids: List[int], p: float, rng, max_attempts: int = 200
) -> List[Tuple[int, int]]:
    """Edges of a connected G(n, p) over ``node_ids``.

    GT-ITM regenerates until connected; for tiny domains (<= tens of
    nodes) this converges fast.  If p is too small to ever connect, a
    random spanning tree is added on the final attempt, which GT-ITM's
    "guarantee connected" mode also does.
    """
    n = len(node_ids)
    if n == 1:
        return []
    for attempt in range(max_attempts):
        edges = []
        adjacency: Dict[int, List[int]] = {v: [] for v in node_ids}
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < p:
                    edges.append((node_ids[i], node_ids[j]))
                    adjacency[node_ids[i]].append(node_ids[j])
                    adjacency[node_ids[j]].append(node_ids[i])
        # Connectivity check via simple BFS on the local adjacency.
        seen = {node_ids[0]}
        frontier = [node_ids[0]]
        while frontier:
            u = frontier.pop()
            for v in adjacency[u]:
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        if len(seen) == n:
            return edges
    # Fall back: keep last edge set, patch with a random spanning tree.
    order = list(node_ids)
    rng.shuffle(order)
    patched = set(edges)
    for i in range(1, n):
        patched.add((order[i], order[rng.randrange(i)]))
    return list(patched)


def _emit_transit_stub(
    dest: EdgeSink, params: TransitStubParams, rng
) -> Dict[int, str]:
    roles: Dict[int, str] = {}
    next_id = 0

    # --- Transit domains -------------------------------------------------
    transit_nodes_by_domain: List[List[int]] = []
    for _ in range(params.transit_domains):
        ids = list(range(next_id, next_id + params.nodes_per_transit))
        next_id += params.nodes_per_transit
        for node in ids:
            dest.add_node(node)
            roles[node] = "transit"
        for u, v in _random_connected_domain(ids, params.transit_edge_prob, rng):
            dest.add_edge(u, v)
        transit_nodes_by_domain.append(ids)

    # --- Inter-transit-domain links --------------------------------------
    # A connected random graph at the domain level; each domain-level edge
    # becomes a link between random nodes of the two domains.
    domain_ids = list(range(params.transit_domains))
    if params.transit_domains > 1:
        domain_edges = _random_connected_domain(
            domain_ids, params.transit_connect_prob, rng
        )
        for da, db in domain_edges:
            u = transit_nodes_by_domain[da][rng.randrange(params.nodes_per_transit)]
            v = transit_nodes_by_domain[db][rng.randrange(params.nodes_per_transit)]
            dest.add_edge(u, v)

    # --- Stub domains -----------------------------------------------------
    stub_nodes: List[int] = []
    for domain in transit_nodes_by_domain:
        for transit_node in domain:
            for _ in range(params.stubs_per_transit_node):
                ids = list(range(next_id, next_id + params.nodes_per_stub))
                next_id += params.nodes_per_stub
                for node in ids:
                    dest.add_node(node)
                    roles[node] = "stub"
                    stub_nodes.append(node)
                for u, v in _random_connected_domain(
                    ids, params.stub_edge_prob, rng
                ):
                    dest.add_edge(u, v)
                # Attach the stub domain to its transit node.
                dest.add_edge(transit_node, ids[rng.randrange(len(ids))])

    # --- Extra transit-stub and stub-stub edges ---------------------------
    all_transit = [n for ids in transit_nodes_by_domain for n in ids]
    added = 0
    guard = 0
    while added < params.extra_transit_stub and guard < 10000:
        guard += 1
        u = all_transit[rng.randrange(len(all_transit))]
        v = stub_nodes[rng.randrange(len(stub_nodes))]
        if not dest.has_edge(u, v):
            dest.add_edge(u, v)
            added += 1
    added = 0
    guard = 0
    while added < params.extra_stub_stub and guard < 10000:
        guard += 1
        u = stub_nodes[rng.randrange(len(stub_nodes))]
        v = stub_nodes[rng.randrange(len(stub_nodes))]
        if u != v and not dest.has_edge(u, v):
            dest.add_edge(u, v)
            added += 1
    return roles


def transit_stub(
    params: TransitStubParams = TransitStubParams(),
    seed: Seed = None,
    sink: Optional[EdgeSink] = None,
):
    """Generate a Transit-Stub topology.

    The result is connected by construction.  Node labels encode the role:
    transit node ``("t", domain, index)`` and stub node
    ``("s", domain, stub, index)`` are relabeled to consecutive integers,
    with the role map retained in :func:`transit_stub_with_roles`.
    """
    graph, _ = transit_stub_with_roles(params, seed, sink=sink)
    return graph


def transit_stub_with_roles(
    params: TransitStubParams = TransitStubParams(),
    seed: Seed = None,
    sink: Optional[EdgeSink] = None,
):
    """Like :func:`transit_stub` but also returns node -> role ("transit"
    or "stub"), used by the hierarchy sanity checks ("the highest valued
    links in TS are in the transit cloud")."""
    rng = make_rng(seed)
    require(
        params.transit_domains >= 1 and params.nodes_per_transit >= 1,
        "need at least one transit domain and node",
    )
    require(
        params.nodes_per_stub >= 1 and params.stubs_per_transit_node >= 0,
        "invalid stub parameters",
    )

    dest = sink if sink is not None else GraphSink()
    roles = _emit_transit_stub(dest, params, rng)
    if not dest.connected():
        raise GenerationError(
            "Transit-Stub construction produced a disconnected graph"
        )
    graph = dest.finalize(name="Transit-Stub", component="all")
    return graph, restrict_roles(graph, roles)
