#!/usr/bin/env python
"""CI determinism gate: the same CLI invocation must produce the same
report, byte for byte.

Generates two small topologies, runs ``repro compare`` on them twice
(cache disabled, fresh process each time so no in-process state can
leak), and diffs the two reports.  Any drift — RNG seeded off the
clock, dict-ordering leaks, float nondeterminism — fails the build.

Usage: python tools/check_determinism.py [--workers N]
"""

from __future__ import annotations

import argparse
import difflib
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_cli(args: list[str], cwd: str) -> None:
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + os.pathsep + existing if existing else src
    subprocess.run(
        [sys.executable, "-m", "repro", *args], cwd=cwd, env=env, check=True
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=0)
    opts = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-determinism-") as tmp:
        tree, plrg = os.path.join(tmp, "tree.edges"), os.path.join(tmp, "plrg.edges")
        run_cli(["generate", "tree", "--k", "3", "--depth", "5", "--out", tree], tmp)
        run_cli(
            ["generate", "plrg", "--n", "300", "--seed", "5", "--out", plrg], tmp
        )

        reports = []
        for i in (1, 2):
            out = os.path.join(tmp, f"report{i}.md")
            run_cli(
                [
                    "compare", tree, plrg,
                    "--centers", "4", "--max-ball", "200",
                    "--workers", str(opts.workers),
                    "--no-cache", "--out", out,
                ],
                tmp,
            )
            with open(out) as fh:
                reports.append(fh.read())

    if reports[0] != reports[1]:
        sys.stderr.write("determinism check FAILED: reports differ\n\n")
        sys.stderr.writelines(
            difflib.unified_diff(
                reports[0].splitlines(keepends=True),
                reports[1].splitlines(keepends=True),
                fromfile="report1.md",
                tofile="report2.md",
            )
        )
        return 1

    print(
        "determinism check OK: identical reports "
        f"({len(reports[0])} bytes, workers={opts.workers})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
