#!/usr/bin/env python3
"""End-to-end smoke test of the ``repro serve`` daemon (CI `service-smoke`).

Boots real daemon subprocesses and asserts the service contract from
the outside, exactly as an operator would observe it:

1. **Exactly-once compute** — N concurrent clients asking the same
   (graph, metric, params) question get identical answers, and the
   daemon's provenance counters show a single engine computation
   (coalesced and/or cache-served for everyone else).
2. **Bitwise fidelity** — the daemon's answer equals a direct
   in-process ``MetricEngine`` computation on the same edge list.
3. **Backpressure** — a daemon at ``--max-pending 0`` refuses compute
   requests with a ``busy`` error while still answering ``status``.
4. **Graceful drain** — ``SIGTERM`` exits 0, finishes admitted work,
   and removes the socket file.

Run from the repository root (src/ is added to ``sys.path`` if the
package is not installed)::

    python tools/service_smoke.py
"""

import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import threading
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.engine import MetricEngine  # noqa: E402
from repro.generators import plrg  # noqa: E402
from repro.graph.io import read_edgelist, write_edgelist  # noqa: E402
from repro.service import ERR_BUSY, ServiceClient, ServiceError  # noqa: E402

CLIENTS = 6
PARAMS = {"num_centers": 6, "seed": 1}


def start_daemon(sock, cwd, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock, *extra],
        cwd=cwd,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    deadline = time.monotonic() + 30
    while not os.path.exists(sock):
        if process.poll() is not None:
            raise AssertionError(
                f"daemon died at startup:\n{process.stdout.read().decode()}"
            )
        if time.monotonic() > deadline:
            process.kill()
            raise AssertionError("daemon never bound its socket")
        time.sleep(0.05)
    return process


def stop_daemon(process, sock):
    process.send_signal(signal.SIGTERM)
    out, _ = process.communicate(timeout=30)
    assert process.returncode == 0, (
        f"SIGTERM exit code {process.returncode}:\n{out.decode()}"
    )
    assert b"drained" in out, f"no drain notice in output:\n{out.decode()}"
    assert not os.path.exists(sock), "socket file left behind after drain"
    return out


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="repro-smoke-")
    graph_path = os.path.join(tmp, "g.edges")
    write_edgelist(plrg(400, 2.246, seed=7), graph_path)
    sock = os.path.join(tmp, "s.sock")

    # ---- phase 1: concurrent duplicates, one computation -------------
    daemon = start_daemon(sock, tmp, "--cache-dir", os.path.join(tmp, "cache"))
    results, errors = [], []

    def ask():
        try:
            with ServiceClient(sock) as client:
                results.append(
                    client.metric(graph_path, "expansion", params=dict(PARAMS))
                )
        except Exception as exc:  # surfaced below, with context
            errors.append(exc)

    threads = [threading.Thread(target=ask) for _ in range(CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, f"client errors: {errors}"
    assert len(results) == CLIENTS
    assert all(series == results[0] for series in results), (
        "concurrent duplicate requests returned different series"
    )
    with ServiceClient(sock) as client:
        counters = client.status()["counters"]
    assert counters["series_computed"] == 1, (
        f"{CLIENTS} duplicate requests ran {counters['series_computed']} "
        f"computations (counters: {counters})"
    )
    shared = counters["coalesced"] + counters["series_cached"]
    assert shared == CLIENTS - 1, (
        f"expected {CLIENTS - 1} coalesced/cached answers, saw {shared} "
        f"(counters: {counters})"
    )
    print(
        f"phase 1 ok: {CLIENTS} concurrent duplicates -> 1 computation "
        f"({counters['coalesced']} coalesced, "
        f"{counters['series_cached']} cache hits)"
    )

    # ---- phase 2: daemon answer == direct engine answer, bitwise -----
    local = MetricEngine(workers=0, use_cache=False).compute_one(
        read_edgelist(graph_path), "expansion", **PARAMS
    )
    assert [tuple(p) for p in results[0]] == [tuple(p) for p in local], (
        "daemon series differs from direct engine series"
    )
    print("phase 2 ok: daemon answer bitwise-identical to direct engine")

    # ---- phase 3: SIGTERM drains cleanly -----------------------------
    stop_daemon(daemon, sock)
    print("phase 3 ok: SIGTERM -> exit 0, drained, socket removed")

    # ---- phase 4: backpressure at --max-pending 0 --------------------
    daemon = start_daemon(
        sock, tmp, "--max-pending", "0",
        "--cache-dir", os.path.join(tmp, "cache-busy"),
    )
    try:
        with ServiceClient(sock) as client:
            try:
                client.metric(graph_path, "expansion", params=dict(PARAMS))
                raise AssertionError("full queue accepted a compute request")
            except ServiceError as exc:
                assert exc.code == ERR_BUSY, f"wanted busy, got {exc.code}"
            status = client.status()  # control ops still answer
            assert status["counters"]["busy_rejected"] == 1
    finally:
        stop_daemon(daemon, sock)
    print("phase 4 ok: busy backpressure + status during saturation")

    print("service smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
