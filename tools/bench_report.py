#!/usr/bin/env python
"""One-table trend report across every benchmark artifact.

The perf suites each write their own JSON (``BENCH_engine.json`` from
the shared-ball engine duel, ``BENCH_csr.json`` from the CSR/fused
kernel gates, ``BENCH_scale.json`` from the streaming-RSS duel), which
makes eyeballing a regression across PRs a three-file chore.  This tool
flattens all of them into a single aligned table:

    source        series                          size  baseline  optimized  ratio
    BENCH_csr     fused_batch/distortion         10000    0.0901     0.0323  2.79x

``ratio`` is speedup (baseline/optimized seconds) except for the scale
rows, where it is the RSS fraction (streaming/dict — smaller is
better, marked ``rss``).  Missing artifacts are listed and skipped, so
the report works from any subset (e.g. a perf-smoke run that only
produced ``BENCH_csr.json``).

Usage: python tools/bench_report.py [--dir REPO_ROOT]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

Row = tuple  # (source, series, size, baseline_s, optimized_s, ratio, kind)


def _row(source, series, size, baseline, optimized, ratio, kind="x"):
    return (source, series, size, baseline, optimized, ratio, kind)


def rows_engine(record) -> list:
    return [
        _row(
            "BENCH_engine",
            "shared-ball engine vs legacy",
            record.get("nodes"),
            record.get("legacy_seconds"),
            record.get("engine_seconds"),
            record.get("speedup"),
        )
    ]


def rows_csr(record) -> list:
    rows = []
    for entry in record.get("sizes", []):
        n = entry.get("n")
        for series, payload in (
            ("bfs_sweep", entry.get("bfs_sweep")),
            ("expansion_series", entry.get("expansion_series")),
        ):
            if payload:
                rows.append(
                    _row(
                        "BENCH_csr",
                        series,
                        n,
                        payload.get("dict_seconds"),
                        payload.get("csr_seconds"),
                        payload.get("speedup"),
                    )
                )
        for name, payload in (entry.get("metric_cores") or {}).items():
            if isinstance(payload, dict):
                rows.append(
                    _row(
                        "BENCH_csr",
                        f"metric_cores/{name}",
                        n,
                        payload.get("dict_seconds"),
                        payload.get("csr_seconds"),
                        payload.get("speedup"),
                    )
                )
        for name, payload in (entry.get("fused_batch") or {}).items():
            if isinstance(payload, dict):
                rows.append(
                    _row(
                        "BENCH_csr",
                        f"fused_batch/{name}",
                        n,
                        payload.get("per_ball_seconds"),
                        payload.get("fused_seconds"),
                        payload.get("speedup"),
                    )
                )
        transport = entry.get("transport")
        if transport:
            rows.append(
                _row(
                    "BENCH_csr",
                    "transport shm vs copy (wall)",
                    n,
                    transport.get("copy_wall_seconds"),
                    transport.get("shm_wall_seconds"),
                    transport.get("speedup"),
                )
            )
    return rows


def rows_scale(record) -> list:
    rows = []
    for entry in record.get("time_to_frozen", []):
        if "dict_seconds" in entry:
            rows.append(
                _row(
                    "BENCH_scale",
                    "stream vs dict build",
                    entry.get("n"),
                    entry.get("dict_seconds"),
                    entry.get("stream_seconds"),
                    round(entry["dict_seconds"] / entry["stream_seconds"], 3)
                    if entry.get("stream_seconds")
                    else None,
                )
            )
            rows.append(
                _row(
                    "BENCH_scale",
                    "stream RSS fraction",
                    entry.get("n"),
                    entry.get("dict_rss_kb"),
                    entry.get("stream_rss_kb"),
                    entry.get("rss_fraction"),
                    kind="rss",
                )
            )
    million = record.get("million_node")
    if million:
        rows.append(
            _row(
                "BENCH_scale",
                "million-node streamed build",
                million.get("n"),
                None,
                million.get("build_seconds"),
                None,
            )
        )
    return rows


PARSERS = {
    "BENCH_engine.json": rows_engine,
    "BENCH_csr.json": rows_csr,
    "BENCH_scale.json": rows_scale,
}


def _fmt(value, kind=None) -> str:
    if value is None:
        return "-"
    if kind == "x":
        return f"{value}x"
    if kind == "rss":
        return f"{value} rss"
    if isinstance(value, float):
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def build_report(root: str):
    rows, missing = [], []
    for filename, parse in PARSERS.items():
        path = os.path.join(root, filename)
        if not os.path.exists(path):
            missing.append(filename)
            continue
        with open(path, encoding="utf-8") as handle:
            rows.extend(parse(json.load(handle)))
    return rows, missing


def render(rows) -> str:
    header = ("source", "series", "size", "baseline", "optimized", "ratio")
    table = [header]
    for source, series, size, baseline, optimized, ratio, kind in rows:
        table.append(
            (
                source,
                series,
                _fmt(size),
                _fmt(baseline),
                _fmt(optimized),
                _fmt(ratio, kind),
            )
        )
    widths = [max(len(row[col]) for row in table) for col in range(len(header))]
    lines = []
    for i, row in enumerate(table):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        )
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Render one trend table across all BENCH_*.json files."
    )
    parser.add_argument(
        "--dir",
        default=REPO_ROOT,
        help="directory holding the BENCH_*.json artifacts (default: repo root)",
    )
    opts = parser.parse_args()
    rows, missing = build_report(opts.dir)
    if rows:
        print(render(rows))
    for filename in missing:
        print(f"(no {filename} — run its perf suite to add those rows)")
    if not rows:
        print("no benchmark artifacts found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
